package shuffle

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Core is the per-node shuffle step core implementing protocol.StepCore:
// the delete-on-send exchange expressed over a single local view. The
// sequential Protocol adapter shares one Core across all nodes; the
// concurrent runtime builds one per node. Not safe for concurrent use.
type Core struct {
	s        int
	counters Counters
}

var _ protocol.StepCore = (*Core)(nil)

// NewCore builds a shuffle step core with view size s.
func NewCore(s int) (*Core, error) {
	if s < 2 {
		return nil, fmt.Errorf("shuffle: view size must be >= 2, got %d", s)
	}
	return &Core{s: s}, nil
}

// Name returns "shuffle".
func (c *Core) Name() string { return "shuffle" }

// ViewSize returns s.
func (c *Core) ViewSize() int { return c.s }

// Counters returns a copy of the core's event counters.
func (c *Core) Counters() Counters { return c.counters }

// SeedView fills a fresh view with the seed ids (at least one).
func (c *Core) SeedView(seeds []peer.ID) (*view.View, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("shuffle: need at least one seed")
	}
	v := view.New(c.s)
	for i, id := range seeds {
		if i >= c.s {
			break
		}
		v.Set(i, id)
	}
	return v, nil
}

// Initiate removes two entries (the exchange offer) and sends them to the
// first as a request.
func (c *Core) Initiate(lv *view.View, u peer.ID, r *rng.RNG) ([]protocol.Outgoing, bool) {
	c.counters.Initiations++
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		c.counters.SelfLoops++
		return nil, false
	}
	lv.Clear(i)
	lv.Clear(j)
	c.counters.Requests++
	return []protocol.Outgoing{{To: v, Msg: protocol.Message{
		Kind: protocol.KindRequest,
		From: u,
		IDs:  []peer.ID{u, w},
	}}}, true
}

// Receive handles requests (store ids, remove and reply with two own
// entries) and replies (store ids). Messages of other kinds are ignored.
func (c *Core) Receive(lv *view.View, u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Outgoing, bool) {
	switch msg.Kind {
	case protocol.KindRequest:
		c.store(lv, msg.IDs, r)
		// Offer up to two of our own entries back, removing them.
		occupied := lv.OccupiedSlots()
		k := 2
		if len(occupied) < k {
			k = len(occupied)
		}
		if k == 0 {
			return protocol.Outgoing{}, false
		}
		var offer []peer.ID
		for _, idx := range r.Choose(len(occupied), k) {
			slot := occupied[idx]
			offer = append(offer, lv.Slot(slot))
			lv.Clear(slot)
		}
		c.counters.Replies++
		return protocol.Outgoing{To: msg.From, Msg: protocol.Message{
			Kind: protocol.KindReply,
			From: u,
			IDs:  offer,
		}}, true
	case protocol.KindReply:
		c.store(lv, msg.IDs, r)
		return protocol.Outgoing{}, false
	default:
		return protocol.Outgoing{}, false
	}
}

// store places ids into uniformly chosen empty slots, dropping ids that do
// not fit (counted).
func (c *Core) store(lv *view.View, ids []peer.ID, r *rng.RNG) {
	for _, id := range ids {
		slots, ok := lv.RandomEmptySlots(r, 1)
		if !ok {
			c.counters.Dropped++
			continue
		}
		lv.Set(slots[0], id)
	}
}

// CheckView verifies internal view consistency; the shuffle keeps no parity
// or floor invariant (under loss its id population only decays).
func (c *Core) CheckView(lv *view.View) error {
	return lv.CheckInvariants()
}
