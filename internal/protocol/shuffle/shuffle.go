// Package shuffle implements a delete-on-send shuffle baseline in the
// spirit of Cyclon [34] and the shuffle/flipper protocols [1, 26, 27] the
// paper surveys in Section 3.1.
//
// An initiator removes two entries (its exchange offer), sends them together
// with its own id to the first one, and the receiver replies with two of its
// own entries, which it removes and replaces by the received ids. Without
// loss the total number of ids in the system is conserved. With loss every
// dropped request or reply permanently destroys the removed ids — the paper's
// claim that such protocols "are unable to withstand message loss ... since
// the system gradually loses more and more ids" is exactly the behaviour the
// base1 experiment measures against S&F.
package shuffle

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the shuffle baseline.
type Config struct {
	// N is the number of nodes.
	N int
	// S is the view size (at least 2).
	S int
	// InitDegree is the initial outdegree (defaults to S/2, at least 2).
	InitDegree int
}

// Counters tallies baseline events.
type Counters struct {
	Initiations int
	SelfLoops   int
	Requests    int
	Replies     int
	Dropped     int // received ids discarded because no empty slot was left
}

// Protocol is the shuffle baseline state. It implements protocol.Protocol
// and protocol.Churner by delegating every step to one shared Core — the
// same step core the concurrent runtime drives.
type Protocol struct {
	cfg    Config
	core   *Core
	views  []*view.View
	active []bool
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the baseline over the same circulant initial topology as S&F.
func New(cfg Config) (*Protocol, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("shuffle: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.S < 2 {
		return nil, fmt.Errorf("shuffle: view size must be >= 2, got %d", cfg.S)
	}
	if cfg.InitDegree == 0 {
		cfg.InitDegree = cfg.S / 2
		if cfg.InitDegree < 2 {
			cfg.InitDegree = 2
		}
	}
	if cfg.InitDegree > cfg.S || cfg.InitDegree >= cfg.N {
		return nil, fmt.Errorf("shuffle: initial degree %d must fit view %d and n %d", cfg.InitDegree, cfg.S, cfg.N)
	}
	core, err := NewCore(cfg.S)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		core:   core,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.InitDegree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	return p, nil
}

// Name returns "shuffle".
func (p *Protocol) Name() string { return "shuffle" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Counters returns a copy of the counters.
func (p *Protocol) Counters() Counters { return p.core.counters }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Initiate removes two entries and offers them to the first, delegating to
// the shared step core.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	lv := p.views[u]
	if lv == nil {
		p.core.counters.Initiations++
		p.core.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	msgs, ok := p.core.Initiate(lv, u, r)
	if !ok {
		return 0, protocol.Message{}, false
	}
	return msgs[0].To, msgs[0].Msg, true
}

// Deliver handles requests and replies by delegating to the shared step
// core.
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		return protocol.Message{}, 0, false
	}
	reply, ok := p.core.Receive(lv, u, msg, r)
	if !ok {
		return protocol.Message{}, 0, false
	}
	return reply.Msg, reply.To, true
}

// Join implements protocol.Churner.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("shuffle: node %v is already active", u)
	}
	v, err := p.core.SeedView(seeds)
	if err != nil {
		return fmt.Errorf("shuffle: join of %v: %w", u, err)
	}
	p.views[u] = v
	p.active[u] = true
	return nil
}

// Leave implements protocol.Churner.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }
