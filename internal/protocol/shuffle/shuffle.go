// Package shuffle implements a delete-on-send shuffle baseline in the
// spirit of Cyclon [34] and the shuffle/flipper protocols [1, 26, 27] the
// paper surveys in Section 3.1.
//
// An initiator removes two entries (its exchange offer), sends them together
// with its own id to the first one, and the receiver replies with two of its
// own entries, which it removes and replaces by the received ids. Without
// loss the total number of ids in the system is conserved. With loss every
// dropped request or reply permanently destroys the removed ids — the paper's
// claim that such protocols "are unable to withstand message loss ... since
// the system gradually loses more and more ids" is exactly the behaviour the
// base1 experiment measures against S&F.
package shuffle

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the shuffle baseline.
type Config struct {
	// N is the number of nodes.
	N int
	// S is the view size (at least 2).
	S int
	// InitDegree is the initial outdegree (defaults to S/2, at least 2).
	InitDegree int
}

// Counters tallies baseline events.
type Counters struct {
	Initiations int
	SelfLoops   int
	Requests    int
	Replies     int
	Dropped     int // received ids discarded because no empty slot was left
}

// Protocol is the shuffle baseline state. It implements protocol.Protocol
// and protocol.Churner.
type Protocol struct {
	cfg      Config
	views    []*view.View
	active   []bool
	counters Counters
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the baseline over the same circulant initial topology as S&F.
func New(cfg Config) (*Protocol, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("shuffle: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.S < 2 {
		return nil, fmt.Errorf("shuffle: view size must be >= 2, got %d", cfg.S)
	}
	if cfg.InitDegree == 0 {
		cfg.InitDegree = cfg.S / 2
		if cfg.InitDegree < 2 {
			cfg.InitDegree = 2
		}
	}
	if cfg.InitDegree > cfg.S || cfg.InitDegree >= cfg.N {
		return nil, fmt.Errorf("shuffle: initial degree %d must fit view %d and n %d", cfg.InitDegree, cfg.S, cfg.N)
	}
	p := &Protocol{
		cfg:    cfg,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.InitDegree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	return p, nil
}

// Name returns "shuffle".
func (p *Protocol) Name() string { return "shuffle" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Counters returns a copy of the counters.
func (p *Protocol) Counters() Counters { return p.counters }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Initiate removes two entries and offers them to the first.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	p.counters.Initiations++
	lv := p.views[u]
	if lv == nil {
		p.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		p.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	lv.Clear(i)
	lv.Clear(j)
	p.counters.Requests++
	return v, protocol.Message{
		Kind: protocol.KindRequest,
		From: u,
		IDs:  []peer.ID{u, w},
	}, true
}

// Deliver handles requests (store ids, remove and reply with two own
// entries) and replies (store ids).
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		return protocol.Message{}, 0, false
	}
	switch msg.Kind {
	case protocol.KindRequest:
		p.store(lv, msg.IDs, r)
		// Offer up to two of our own entries back, removing them.
		occupied := lv.OccupiedSlots()
		k := 2
		if len(occupied) < k {
			k = len(occupied)
		}
		if k == 0 {
			return protocol.Message{}, 0, false
		}
		var offer []peer.ID
		for _, idx := range r.Choose(len(occupied), k) {
			slot := occupied[idx]
			offer = append(offer, lv.Slot(slot))
			lv.Clear(slot)
		}
		p.counters.Replies++
		return protocol.Message{
			Kind: protocol.KindReply,
			From: u,
			IDs:  offer,
		}, msg.From, true
	case protocol.KindReply:
		p.store(lv, msg.IDs, r)
		return protocol.Message{}, 0, false
	default:
		return protocol.Message{}, 0, false
	}
}

// store places ids into uniformly chosen empty slots, dropping ids that do
// not fit (counted).
func (p *Protocol) store(lv *view.View, ids []peer.ID, r *rng.RNG) {
	for _, id := range ids {
		slots, ok := lv.RandomEmptySlots(r, 1)
		if !ok {
			p.counters.Dropped++
			continue
		}
		lv.Set(slots[0], id)
	}
}

// Join implements protocol.Churner.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("shuffle: node %v is already active", u)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("shuffle: join of %v needs seeds", u)
	}
	v := view.New(p.cfg.S)
	for i, id := range seeds {
		if i >= p.cfg.S {
			break
		}
		v.Set(i, id)
	}
	p.views[u] = v
	p.active[u] = true
	return nil
}

// Leave implements protocol.Churner.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }
