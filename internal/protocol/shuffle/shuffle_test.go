package shuffle

import (
	"testing"

	"sendforget/internal/graph"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{N: 1, S: 4}); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := New(Config{N: 10, S: 1}); err == nil {
		t.Error("accepted s=1")
	}
	if _, err := New(Config{N: 10, S: 4, InitDegree: 5}); err == nil {
		t.Error("accepted init degree > s")
	}
	if _, err := New(Config{N: 3, S: 8, InitDegree: 4}); err == nil {
		t.Error("accepted init degree >= n")
	}
}

func TestInitialTopologyConnected(t *testing.T) {
	p := mustNew(t, Config{N: 20, S: 8, InitDegree: 4})
	g := graph.FromViews(p.Views())
	if !g.WeaklyConnected() {
		t.Fatal("initial topology disconnected")
	}
	if p.Name() != "shuffle" || p.N() != 20 {
		t.Errorf("identity: name=%q n=%d", p.Name(), p.N())
	}
}

// drive runs full request/reply exchanges, losing each message with pLoss.
func drive(p *Protocol, actions int, pLoss float64, seed int64) {
	r := rng.New(seed)
	n := p.N()
	for k := 0; k < actions; k++ {
		u := peer.ID(r.Intn(n))
		if !p.Active(u) {
			continue
		}
		to, msg, ok := p.Initiate(u, r)
		if !ok {
			continue
		}
		if r.Bernoulli(pLoss) {
			continue // request lost
		}
		if !p.Active(to) {
			continue
		}
		reply, replyTo, hasReply := p.Deliver(to, msg, r)
		if !hasReply || r.Bernoulli(pLoss) {
			continue // no reply or reply lost
		}
		if p.Active(replyTo) {
			p.Deliver(replyTo, reply, r)
		}
	}
}

func TestEdgesConservedWithoutLoss(t *testing.T) {
	p := mustNew(t, Config{N: 30, S: 10, InitDegree: 4})
	before := graph.FromViews(p.Views()).NumEdges()
	drive(p, 20000, 0, 1)
	after := graph.FromViews(p.Views()).NumEdges()
	// The initiator injects its own id into its offer, so each full
	// exchange conserves the id population exactly except for drops when a
	// view fills up.
	c := p.Counters()
	want := before - c.Dropped
	if after != want {
		t.Errorf("edges = %d, want %d (before=%d dropped=%d)", after, want, before, c.Dropped)
	}
	if after < before-c.Dropped-1 {
		t.Errorf("ids destroyed without loss: %d -> %d", before, after)
	}
}

func TestIDsDecayUnderLoss(t *testing.T) {
	// The paper's Section 3.1 claim: delete-on-send protocols gradually
	// lose ids under message loss. At 20% loss and many rounds, the edge
	// population must collapse far below its initial value.
	p := mustNew(t, Config{N: 50, S: 10, InitDegree: 6})
	before := graph.FromViews(p.Views()).NumEdges()
	drive(p, 100000, 0.2, 2)
	after := graph.FromViews(p.Views()).NumEdges()
	if after > before/4 {
		t.Errorf("edge population %d -> %d; expected collapse under 20%% loss", before, after)
	}
}

func TestRequestGeneratesReply(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, InitDegree: 4})
	r := rng.New(3)
	for k := 0; k < 1000; k++ {
		to, msg, ok := p.Initiate(0, r)
		if !ok {
			continue
		}
		reply, replyTo, hasReply := p.Deliver(to, msg, r)
		if !hasReply {
			t.Fatal("request produced no reply from non-empty view")
		}
		if replyTo != 0 {
			t.Errorf("reply addressed to %v, want n0", replyTo)
		}
		if reply.Kind != protocol.KindReply {
			t.Errorf("reply kind = %v", reply.Kind)
		}
		if len(reply.IDs) == 0 || len(reply.IDs) > 2 {
			t.Errorf("reply carries %d ids", len(reply.IDs))
		}
		p.Deliver(replyTo, reply, r)
		return
	}
	t.Fatal("no exchange in 1000 attempts")
}

func TestSelfLoopOnEmptyView(t *testing.T) {
	p := mustNew(t, Config{N: 4, S: 4, InitDegree: 2})
	// Drain node 0's view via lost requests.
	r := rng.New(4)
	for k := 0; k < 10000 && p.View(0).Outdegree() > 0; k++ {
		p.Initiate(0, r)
	}
	if p.View(0).Outdegree() != 0 {
		t.Fatal("failed to drain view")
	}
	if _, _, ok := p.Initiate(0, r); ok {
		t.Error("empty view initiated an exchange")
	}
}

func TestChurn(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, InitDegree: 4})
	p.Leave(2)
	if p.Active(2) || p.View(2) != nil {
		t.Fatal("Leave did not deactivate")
	}
	if err := p.Join(2, []peer.ID{0, 1}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !p.Active(2) || p.View(2).Outdegree() != 2 {
		t.Fatal("Join did not restore the node")
	}
	if err := p.Join(2, []peer.ID{0}); err == nil {
		t.Error("double join accepted")
	}
	p.Leave(3)
	if err := p.Join(3, nil); err == nil {
		t.Error("join without seeds accepted")
	}
	// Seeds beyond s are truncated.
	p.Leave(4)
	seeds := make([]peer.ID, 12)
	for i := range seeds {
		seeds[i] = peer.ID(i % 3)
	}
	if err := p.Join(4, seeds); err != nil {
		t.Fatal(err)
	}
	if got := p.View(4).Outdegree(); got != 8 {
		t.Errorf("overflow join outdegree = %d, want 8", got)
	}
	// Departed nodes neither initiate nor reply.
	r := rng.New(5)
	p.Leave(5)
	if _, _, ok := p.Initiate(5, r); ok {
		t.Error("departed node initiated")
	}
	if _, _, hasReply := p.Deliver(5, protocol.Message{Kind: protocol.KindRequest, From: 0, IDs: []peer.ID{0, 1}}, r); hasReply {
		t.Error("departed node replied")
	}
}

func TestUnknownKindIgnored(t *testing.T) {
	p := mustNew(t, Config{N: 4, S: 4, InitDegree: 2})
	r := rng.New(6)
	before := p.View(1).Clone()
	if _, _, hasReply := p.Deliver(1, protocol.Message{Kind: 99, From: 0, IDs: []peer.ID{0}}, r); hasReply {
		t.Error("unknown kind produced a reply")
	}
	if !p.View(1).Equal(before) {
		t.Error("unknown kind mutated the view")
	}
}
