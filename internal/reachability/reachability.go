// Package reachability implements the constructive graph transformations
// of the paper's Appendix ("Uniformity and independence"): the edge
// exchange and degree borrowing operations that the proofs of Lemmas
// A.1-A.3 compose to show that every membership graph can be reached from
// every other by a sequence of S&F actions (with adversarially chosen loss
// outcomes, each of which has positive probability).
//
// Everything here is expressed as sequences of concrete S&F actions; Apply
// validates that each action is legal under the protocol semantics before
// mutating the graph, so a returned plan is a machine-checked witness of
// reachability.
package reachability

import "fmt"

// Config carries the protocol parameters the transformations must respect.
type Config struct {
	// S is the view size; DL the duplication threshold.
	S, DL int
}

// Graph is a small mutable membership multigraph: M[u][v] is the
// multiplicity of v in u's view.
type Graph struct {
	M [][]int
}

// NewGraph returns an empty n-node graph.
func NewGraph(n int) *Graph {
	g := &Graph{M: make([][]int, n)}
	for u := range g.M {
		g.M[u] = make([]int, n)
	}
	return g
}

// FromMult builds a graph from a multiplicity matrix (deep copied).
func FromMult(m [][]int) (*Graph, error) {
	n := len(m)
	g := NewGraph(n)
	for u := range m {
		if len(m[u]) != n {
			return nil, fmt.Errorf("reachability: row %d has %d entries, want %d", u, len(m[u]), n)
		}
		for v, k := range m[u] {
			if k < 0 {
				return nil, fmt.Errorf("reachability: negative multiplicity at (%d,%d)", u, v)
			}
			g.M[u][v] = k
		}
	}
	return g, nil
}

// N returns the node count.
func (g *Graph) N() int { return len(g.M) }

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.N())
	for u := range g.M {
		copy(c.M[u], g.M[u])
	}
	return c
}

// OutDeg returns d(u).
func (g *Graph) OutDeg(u int) int {
	d := 0
	for _, k := range g.M[u] {
		d += k
	}
	return d
}

// Equal reports multiplicity-matrix equality.
func (g *Graph) Equal(o *Graph) bool {
	if g.N() != o.N() {
		return false
	}
	for u := range g.M {
		for v := range g.M[u] {
			if g.M[u][v] != o.M[u][v] {
				return false
			}
		}
	}
	return true
}

// Action is one S&F action with a chosen loss outcome. The initiator From
// selects an entry holding Target (the message destination) and an entry
// holding Payload; duplication is determined by the protocol state, loss by
// the Lost field (any outcome has positive probability under 0 < l < 1, so
// a plan of actions is a positive-probability path in the global MC).
type Action struct {
	From, Target, Payload int
	Lost                  bool
}

// Apply executes the action on g under cfg, validating legality. It
// returns a description of what happened (dup/deletion) for tests.
func Apply(g *Graph, cfg Config, a Action) (dup, deleted bool, err error) {
	n := g.N()
	for _, x := range []int{a.From, a.Target, a.Payload} {
		if x < 0 || x >= n {
			return false, false, fmt.Errorf("reachability: node %d out of range", x)
		}
	}
	if g.M[a.From][a.Target] < 1 {
		return false, false, fmt.Errorf("reachability: %d's view lacks target %d", a.From, a.Target)
	}
	need := 1
	if a.Payload == a.Target {
		need = 2
	}
	if g.M[a.From][a.Payload] < need {
		return false, false, fmt.Errorf("reachability: %d's view lacks payload %d", a.From, a.Payload)
	}
	d := g.OutDeg(a.From)
	if d > cfg.S {
		return false, false, fmt.Errorf("reachability: node %d outdegree %d exceeds s=%d", a.From, d, cfg.S)
	}
	dup = d <= cfg.DL
	if !dup {
		g.M[a.From][a.Target]--
		g.M[a.From][a.Payload]--
	}
	if a.Lost {
		return dup, false, nil
	}
	if g.OutDeg(a.Target) >= cfg.S {
		return dup, true, nil
	}
	g.M[a.Target][a.From]++
	g.M[a.Target][a.Payload]++
	return dup, false, nil
}

// ApplyAll executes a plan, failing on the first illegal action.
func ApplyAll(g *Graph, cfg Config, plan []Action) error {
	for i, a := range plan {
		if _, _, err := Apply(g, cfg, a); err != nil {
			return fmt.Errorf("action %d (%+v): %w", i, a, err)
		}
	}
	return nil
}

// EdgeExchange returns the two-action plan of the Appendix's "edge exchange
// transformation of (u,w) and (v,z)" for out-neighbors u -> v: it removes
// edges (u,w) and (v,z) and creates (u,z) and (v,w), leaving everything
// else unchanged. Prerequisites (checked): v in u's view, w in u's view
// (alongside v), z in v's view, d(u) > dL, and d(v) < s; additionally v's
// reply step must itself be a non-duplicating action, which holds when
// d(v)+2 > dL.
func EdgeExchange(g *Graph, cfg Config, u, w, v, z int) ([]Action, error) {
	if u == v {
		return nil, fmt.Errorf("reachability: edge exchange needs distinct u, v")
	}
	if g.M[u][v] < 1 {
		return nil, fmt.Errorf("reachability: u=%d has no edge to v=%d", u, v)
	}
	need := 1
	if w == v {
		need = 2
	}
	if g.M[u][w] < need {
		return nil, fmt.Errorf("reachability: u=%d lacks payload edge to w=%d", u, w)
	}
	if g.M[v][z] < 1 {
		return nil, fmt.Errorf("reachability: v=%d lacks edge to z=%d", v, z)
	}
	if g.OutDeg(u) <= cfg.DL {
		return nil, fmt.Errorf("reachability: d(u)=%d must exceed dL=%d", g.OutDeg(u), cfg.DL)
	}
	if g.OutDeg(v) >= cfg.S {
		return nil, fmt.Errorf("reachability: d(v)=%d must be below s=%d", g.OutDeg(v), cfg.S)
	}
	if g.OutDeg(v)+2 <= cfg.DL {
		return nil, fmt.Errorf("reachability: v's reply would duplicate (d(v)+2 <= dL)")
	}
	// Step 1: u sends [u, w] to v, clearing v and w; v stores u and w.
	// Step 2: v sends [v, z] to u, clearing u and z; u stores v and z.
	return []Action{
		{From: u, Target: v, Payload: w},
		{From: v, Target: u, Payload: z},
	}, nil
}

// DegreeBorrow returns the one-action plan of the Appendix's "degree
// borrowing transformation between u and v" for out-neighbors u -> v: it
// decreases d(u) by 2 and increases d(v) by 2, preserving both sum degrees.
// Prerequisites: v in u's view, d(u) > dL (payload entry needed too),
// d(v) < s.
func DegreeBorrow(g *Graph, cfg Config, u, v int) ([]Action, error) {
	if u == v {
		return nil, fmt.Errorf("reachability: degree borrowing needs distinct u, v")
	}
	if g.M[u][v] < 1 {
		return nil, fmt.Errorf("reachability: u=%d has no edge to v=%d", u, v)
	}
	if g.OutDeg(u) <= cfg.DL {
		return nil, fmt.Errorf("reachability: d(u)=%d must exceed dL=%d", g.OutDeg(u), cfg.DL)
	}
	if g.OutDeg(v) >= cfg.S {
		return nil, fmt.Errorf("reachability: d(v)=%d must be below s=%d", g.OutDeg(v), cfg.S)
	}
	// Any payload entry works; pick one (v itself if duplicated, else the
	// first other out-neighbor).
	payload := -1
	if g.M[u][v] >= 2 {
		payload = v
	} else {
		for x, k := range g.M[u] {
			if x != v && k > 0 {
				payload = x
				break
			}
		}
	}
	if payload < 0 {
		return nil, fmt.Errorf("reachability: u=%d has no payload entry besides its edge to v", u)
	}
	return []Action{{From: u, Target: v, Payload: payload}}, nil
}

// ShedEdges returns a plan that lowers d(u) by 2*count using actions whose
// messages are lost — the Appendix's device for removing surplus edges
// ("we invoke S&F transformations involving loss"). Requires
// d(u) - 2*count > dL so no send duplicates.
func ShedEdges(g *Graph, cfg Config, u, count int) ([]Action, error) {
	if count < 0 {
		return nil, fmt.Errorf("reachability: negative count")
	}
	work := g.Clone()
	var plan []Action
	for k := 0; k < count; k++ {
		// The send must neither duplicate (outdegree above dL) nor leave
		// the node below the floor afterwards.
		if work.OutDeg(u) <= cfg.DL || work.OutDeg(u)-2 < cfg.DL {
			return nil, fmt.Errorf("reachability: shedding would hit the dL floor at step %d", k)
		}
		// Pick any two entries (a target and a payload).
		target, payload := -1, -1
		for x, m := range work.M[u] {
			if m > 0 && target < 0 {
				target = x
				if m > 1 {
					payload = x
				}
				continue
			}
			if m > 0 && payload < 0 {
				payload = x
			}
		}
		if target < 0 || payload < 0 {
			return nil, fmt.Errorf("reachability: node %d lacks two entries to shed", u)
		}
		a := Action{From: u, Target: target, Payload: payload, Lost: true}
		if _, _, err := Apply(work, cfg, a); err != nil {
			return nil, err
		}
		plan = append(plan, a)
	}
	return plan, nil
}

// GrowEdges returns a plan that raises d(v) by 2*count by having an
// in-neighbor at the duplication floor repeatedly send to v — the
// Appendix's device for creating edges ("once u reaches an outdegree of dL,
// we invoke S&F transformations where u sends messages to its out-neighbors
// and performs duplications"). donor must hold v in its view and sit at
// outdegree <= dL (so its sends duplicate); v must have room.
func GrowEdges(g *Graph, cfg Config, donor, v, count int) ([]Action, error) {
	if donor == v {
		return nil, fmt.Errorf("reachability: donor must differ from v")
	}
	if g.M[donor][v] < 1 {
		return nil, fmt.Errorf("reachability: donor %d lacks an edge to %d", donor, v)
	}
	if g.OutDeg(donor) > cfg.DL {
		return nil, fmt.Errorf("reachability: donor outdegree %d above dL=%d would not duplicate", g.OutDeg(donor), cfg.DL)
	}
	work := g.Clone()
	var plan []Action
	for k := 0; k < count; k++ {
		if work.OutDeg(v) >= cfg.S {
			return nil, fmt.Errorf("reachability: v full at step %d", k)
		}
		payload := -1
		if work.M[donor][v] >= 2 {
			payload = v
		} else {
			for x, m := range work.M[donor] {
				if x != v && m > 0 {
					payload = x
					break
				}
			}
		}
		if payload < 0 {
			return nil, fmt.Errorf("reachability: donor lacks a payload entry")
		}
		a := Action{From: donor, Target: v, Payload: payload}
		if _, _, err := Apply(work, cfg, a); err != nil {
			return nil, err
		}
		plan = append(plan, a)
	}
	return plan, nil
}
