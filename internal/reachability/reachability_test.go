package reachability

import (
	"testing"
	"testing/quick"

	"sendforget/internal/rng"
)

var cfg = Config{S: 8, DL: 2}

// square builds the 4-node graph u -> u+1, u+2 (mod 4): outdegree 2... use
// degree 4 variant for headroom above dL.
func square(t *testing.T, deg int) *Graph {
	t.Helper()
	g := NewGraph(4)
	for u := 0; u < 4; u++ {
		for k := 1; k <= deg; k++ {
			g.M[u][(u+k)%4]++
		}
	}
	return g
}

func TestFromMultValidation(t *testing.T) {
	if _, err := FromMult([][]int{{0, 1}, {1}}); err == nil {
		t.Error("accepted ragged matrix")
	}
	if _, err := FromMult([][]int{{0, -1}, {0, 0}}); err == nil {
		t.Error("accepted negative multiplicity")
	}
	g, err := FromMult([][]int{{0, 2}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDeg(0) != 2 || g.OutDeg(1) != 1 {
		t.Error("FromMult degrees wrong")
	}
}

func TestApplyBasics(t *testing.T) {
	g := square(t, 3) // outdegrees 3 > dL: sends clear
	before := g.Clone()
	dup, deleted, err := Apply(g, cfg, Action{From: 0, Target: 1, Payload: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dup || deleted {
		t.Errorf("dup=%v deleted=%v, want false/false", dup, deleted)
	}
	if g.M[0][1] != before.M[0][1]-1 || g.M[0][2] != before.M[0][2]-1 {
		t.Error("sender entries not cleared")
	}
	if g.M[1][0] != before.M[1][0]+1 || g.M[1][2] != before.M[1][2]+1 {
		t.Error("receiver entries not created")
	}
}

func TestApplyDuplication(t *testing.T) {
	g := NewGraph(3)
	g.M[0][1] = 1
	g.M[0][2] = 1 // d(0) = 2 = dL: duplication
	dup, _, err := Apply(g, cfg, Action{From: 0, Target: 1, Payload: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Error("expected duplication at the dL floor")
	}
	if g.M[0][1] != 1 || g.M[0][2] != 1 {
		t.Error("duplicating send cleared entries")
	}
	if g.M[1][0] != 1 || g.M[1][2] != 1 {
		t.Error("receiver did not store")
	}
}

func TestApplyLoss(t *testing.T) {
	g := square(t, 3)
	recvBefore := g.M[1][0]
	if _, _, err := Apply(g, cfg, Action{From: 0, Target: 1, Payload: 2, Lost: true}); err != nil {
		t.Fatal(err)
	}
	if g.M[1][0] != recvBefore {
		t.Error("lost message still delivered")
	}
	// The non-duplicating sender cleared its entries regardless of loss
	// (Figure 5.2(d)).
	if g.OutDeg(0) != 1 {
		t.Errorf("sender outdegree after lossy send = %d, want 1", g.OutDeg(0))
	}
}

func TestApplyDeletion(t *testing.T) {
	g := NewGraph(3)
	g.M[0][1] = 2
	g.M[0][2] = 2
	g.M[1][0] = 4
	g.M[1][2] = 4 // d(1) = 8 = s: full
	_, deleted, err := Apply(g, cfg, Action{From: 0, Target: 1, Payload: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !deleted {
		t.Error("expected deletion at full receiver")
	}
	if g.OutDeg(1) != 8 {
		t.Errorf("receiver outdegree = %d, want unchanged 8", g.OutDeg(1))
	}
}

func TestApplyValidation(t *testing.T) {
	g := square(t, 2)
	if _, _, err := Apply(g, cfg, Action{From: 0, Target: 3, Payload: 1}); err == nil {
		t.Error("accepted absent target edge (0->3)")
	}
	if _, _, err := Apply(g, cfg, Action{From: 0, Target: 1, Payload: 1}); err == nil {
		t.Error("accepted payload requiring multiplicity 2")
	}
	if _, _, err := Apply(g, cfg, Action{From: 9, Target: 1, Payload: 1}); err == nil {
		t.Error("accepted out-of-range node")
	}
}

func TestEdgeExchange(t *testing.T) {
	g := square(t, 3) // edges u -> u+1, u+2, u+3
	// Exchange (0,2) and (1,3) across the edge 0 -> 1.
	plan, err := EdgeExchange(g, cfg, 0, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Clone()
	want.M[0][2]--
	want.M[0][3]++
	want.M[1][3]--
	want.M[1][2]++
	if err := ApplyAll(g, cfg, plan); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Errorf("edge exchange result wrong:\n got %v\nwant %v", g.M, want.M)
	}
}

func TestEdgeExchangePreservesDegrees(t *testing.T) {
	g := square(t, 3)
	outBefore := make([]int, 4)
	for u := range outBefore {
		outBefore[u] = g.OutDeg(u)
	}
	plan, err := EdgeExchange(g, cfg, 0, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAll(g, cfg, plan); err != nil {
		t.Fatal(err)
	}
	for u := range outBefore {
		if g.OutDeg(u) != outBefore[u] {
			t.Errorf("node %d outdegree changed %d -> %d", u, outBefore[u], g.OutDeg(u))
		}
	}
}

func TestEdgeExchangePrerequisites(t *testing.T) {
	g := square(t, 2) // outdegree 2 = dL: sends duplicate
	if _, err := EdgeExchange(g, cfg, 0, 2, 1, 3); err == nil {
		t.Error("accepted d(u) = dL")
	}
	g = square(t, 3)
	if _, err := EdgeExchange(g, cfg, 0, 0, 0, 1); err == nil {
		t.Error("accepted u == v")
	}
	if _, err := EdgeExchange(g, cfg, 0, 2, 2, 3); err == nil {
		// 0 -> 2 exists... w=2 means payload is the same as v: requires
		// multiplicity 2 of entry 2.
		t.Error("accepted payload aliasing v without multiplicity")
	}
	// Full receiver.
	full := NewGraph(3)
	full.M[0][1] = 2
	full.M[0][2] = 2
	full.M[1][0] = 4
	full.M[1][2] = 4
	if _, err := EdgeExchange(full, cfg, 0, 2, 1, 2); err == nil {
		t.Error("accepted full v")
	}
}

func TestDegreeBorrow(t *testing.T) {
	g := square(t, 4) // outdegree 4 each; note (u, u+4 mod 4 = u) self loop!
	// square(4) gives each node an edge to itself; rebuild without.
	g = NewGraph(4)
	for u := 0; u < 4; u++ {
		for k := 1; k <= 3; k++ {
			g.M[u][(u+k)%4]++
		}
		g.M[u][(u+1)%4]++ // one doubled edge: outdegree 4
	}
	d0, d1 := g.OutDeg(0), g.OutDeg(1)
	plan, err := DegreeBorrow(g, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAll(g, cfg, plan); err != nil {
		t.Fatal(err)
	}
	if g.OutDeg(0) != d0-2 {
		t.Errorf("d(u) = %d, want %d", g.OutDeg(0), d0-2)
	}
	if g.OutDeg(1) != d1+2 {
		t.Errorf("d(v) = %d, want %d", g.OutDeg(1), d1+2)
	}
}

func TestDegreeBorrowPreservesSumDegrees(t *testing.T) {
	g := square(t, 3)
	sums := func(g *Graph) []int {
		out := make([]int, g.N())
		for u := 0; u < g.N(); u++ {
			out[u] = g.OutDeg(u)
		}
		for u := range g.M {
			for v, m := range g.M[u] {
				out[v] += 2 * m
			}
		}
		return out
	}
	before := sums(g)
	plan, err := DegreeBorrow(g, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAll(g, cfg, plan); err != nil {
		t.Fatal(err)
	}
	after := sums(g)
	for u := range before {
		if before[u] != after[u] {
			t.Errorf("sum degree of %d changed %d -> %d", u, before[u], after[u])
		}
	}
}

func TestDegreeBorrowPrerequisites(t *testing.T) {
	g := square(t, 2)
	if _, err := DegreeBorrow(g, cfg, 0, 1); err == nil {
		t.Error("accepted d(u) = dL")
	}
	g = square(t, 3)
	if _, err := DegreeBorrow(g, cfg, 0, 0); err == nil {
		t.Error("accepted u == v")
	}
}

func TestShedEdges(t *testing.T) {
	g := square(t, 3)
	plan, err := ShedEdges(g, cfg, 0, 1) // wait: d=3, dL=2: shedding once -> 1 < dL... odd degrees
	if err == nil {
		// 3 - 2 = 1 <= dL = 2: must fail.
		if err := ApplyAll(g, cfg, plan); err != nil {
			t.Fatal(err)
		}
		t.Error("shedding below the dL floor accepted")
	}
	// With degree 6 it works.
	g6 := NewGraph(4)
	for u := 0; u < 4; u++ {
		for k := 1; k <= 3; k++ {
			g6.M[u][(u+k)%4] += 2
		}
	}
	plan, err = ShedEdges(g6, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyAll(g6, cfg, plan); err != nil {
		t.Fatal(err)
	}
	if g6.OutDeg(0) != 4 {
		t.Errorf("outdegree after shedding = %d, want 4", g6.OutDeg(0))
	}
	// Others unchanged.
	for u := 1; u < 4; u++ {
		if g6.OutDeg(u) != 6 {
			t.Errorf("bystander %d outdegree changed to %d", u, g6.OutDeg(u))
		}
	}
}

func TestGrowEdges(t *testing.T) {
	// Donor at the dL floor with an edge to v: duplicating sends raise
	// d(v) without lowering the donor.
	g := NewGraph(3)
	g.M[0][1] = 1
	g.M[0][2] = 1 // donor 0 at d = 2 = dL
	g.M[1][0] = 2
	g.M[2][0] = 2
	plan, err := GrowEdges(g, cfg, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	dBefore := g.OutDeg(1)
	if err := ApplyAll(g, cfg, plan); err != nil {
		t.Fatal(err)
	}
	if g.OutDeg(1) != dBefore+4 {
		t.Errorf("d(v) = %d, want %d", g.OutDeg(1), dBefore+4)
	}
	if g.OutDeg(0) != 2 {
		t.Errorf("donor outdegree changed to %d", g.OutDeg(0))
	}
	// Donor above the floor must be rejected.
	g2 := square(t, 3)
	if _, err := GrowEdges(g2, cfg, 0, 1, 1); err == nil {
		t.Error("accepted donor above dL")
	}
}

func TestQuickEdgeExchangeOnlyMovesIntendedEdges(t *testing.T) {
	// Property: on random graphs where the prerequisites hold, the edge
	// exchange changes exactly the four intended multiplicities.
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 5
		g := NewGraph(n)
		// Random multigraph with outdegree 4 each.
		for u := 0; u < n; u++ {
			for k := 0; k < 4; k++ {
				v := r.Intn(n - 1)
				if v >= u {
					v++
				}
				g.M[u][v]++
			}
		}
		// Find an applicable (u, w, v, z).
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v || g.M[u][v] == 0 {
					continue
				}
				for w := 0; w < n; w++ {
					need := 1
					if w == v {
						need = 2
					}
					if g.M[u][w] < need {
						continue
					}
					for z := 0; z < n; z++ {
						if g.M[v][z] == 0 {
							continue
						}
						plan, err := EdgeExchange(g, Config{S: 8, DL: 2}, u, w, v, z)
						if err != nil {
							continue
						}
						got := g.Clone()
						if err := ApplyAll(got, Config{S: 8, DL: 2}, plan); err != nil {
							return false
						}
						want := g.Clone()
						want.M[u][w]--
						want.M[u][z]++
						want.M[v][z]--
						want.M[v][w]++
						return got.Equal(want)
					}
				}
			}
		}
		return true // no applicable exchange in this graph
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
