package rng

import (
	crand "crypto/rand" //lint:allow detrand AutoSeed is the audited entropy escape
	"encoding/binary"
	"fmt"
)

// AutoSeed draws a seed from the operating system's entropy source. It
// exists for production deployments (cmd/sfnode) where operators want
// distinct, unpredictable streams per process rather than reproducible
// ones; simulations and experiments must keep passing explicit seeds so
// runs stay bit-for-bit replayable.
//
// This is the single sanctioned use of crypto/rand in the module: the
// detrand analyzer forbids the import everywhere else, and the
// `//lint:allow detrand` directive above marks this one as reviewed.
// Callers that need several related streams should AutoSeed once and
// derive the rest with DeriveSeed, keeping the seed lineage printable for
// postmortem replay.
func AutoSeed() (int64, error) {
	var buf [8]byte
	if _, err := crand.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("rng: reading entropy: %w", err)
	}
	seed := int64(binary.LittleEndian.Uint64(buf[:]))
	if seed == 0 {
		var fallback uint64 = 0x9e3779b97f4a7c15
		seed = int64(fallback)
	}
	return seed, nil
}
