// Package rng provides the deterministic pseudo-random source used by every
// stochastic component in the repository.
//
// The generator is xoshiro256** seeded through SplitMix64, implemented from
// scratch so that experiment results are reproducible bit-for-bit across Go
// releases (math/rand's global source and shuffling order are not stable
// guarantees we want to depend on). The API mirrors the small slice of
// math/rand the protocols need, plus the sampling helpers the paper's
// protocol steps require (uniform distinct pairs, Bernoulli trials).
//
// This package is the only sanctioned randomness source in the repository.
// Simulation and analysis code must not import math/rand, math/rand/v2, or
// crypto/rand, and must not read the wall clock for anything that feeds a
// protocol decision — the detrand analyzer (cmd/sfvet) enforces both
// mechanically. Seeds for derived streams come from DeriveSeed, never from
// arithmetic on other seeds (the seedflow analyzer enforces that). The one
// entropy escape is AutoSeed in this package, which wraps crypto/rand
// behind an audited `//lint:allow detrand` directive so that even
// nondeterministic seeding for production nodes enters through here.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; give each goroutine its own generator via Split.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used to expand seeds into full xoshiro state, as recommended by the
// xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed int64) *RNG {
	r := new(RNG)
	*r = NewState(seed)
	return r
}

// NewState returns a seeded generator by value, producing the same stream as
// New(seed). Engines that keep one generator per node (the sharded cluster
// stores them in a flat slice indexed by node id) use it to avoid a heap
// object and a pointer chase per node.
func NewState(seed int64) RNG {
	var r RNG
	sm := uint64(seed)
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// A state of all zeros is the one invalid xoshiro state; SplitMix64
	// cannot produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// DeriveSeed hashes the parts into a well-mixed seed via SplitMix64. Callers
// that spawn one stream per entity (the cluster's per-node RNGs, keyed by
// cluster seed, node id, and incarnation) use it instead of additive
// arithmetic like seed+id+constant, whose streams collide whenever two
// derivations sum to the same value. The result is never 0 so it survives
// "0 means derive a default" conventions.
func DeriveSeed(parts ...int64) int64 {
	// Each part both perturbs and advances the SplitMix64 state, so
	// (a, b) and (b, a) — and any equal-sum combination — hash differently.
	h := uint64(0x6a09e667f3bcc909)
	for _, p := range parts {
		h ^= uint64(p)
		h = splitMix64(&h)
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return int64(h)
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives an independent child generator. The child's stream is
// decorrelated from the parent's subsequent outputs by reseeding through
// SplitMix64.
func (r *RNG) Split() *RNG {
	c := &RNG{}
	for i := range c.s {
		seed := r.Uint64()
		c.s[i] = splitMix64(&seed)
	}
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = 0x9e3779b97f4a7c15
	}
	return c
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.uint64n(uint64(n)))
}

// uint64n returns a uniform value in [0, n) using Lemire's unbiased
// multiply-shift rejection method.
func (r *RNG) uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped (p<=0 never fires, p>=1 always fires).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pair returns an ordered pair of distinct uniform indices (i, j) in [0, n).
// This is the "select 1 <= i != j <= s u.a.r." step of the S&F protocol
// (Figure 5.1, line 2). It panics if n < 2.
func (r *RNG) Pair(n int) (i, j int) {
	if n < 2 {
		panic("rng: Pair called with n < 2")
	}
	i = r.Intn(n)
	j = r.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// FastPair returns an ordered pair of distinct indices in [0, n) from a
// single 64-bit draw: the word is split into two 32-bit lanes and each lane
// is mapped by multiply-shift. The per-lane deviation from uniform is below
// n/2^32 — invisible at protocol view sizes — and the draw mapping differs
// from Pair, so the two are not stream-compatible under a shared seed. The
// sharded substrate's batch step cores use this to halve the RNG cost of
// pair selection. Requires 2 <= n <= 1<<31; it panics if n < 2.
func (r *RNG) FastPair(n int) (i, j int) {
	if n < 2 {
		panic("rng: FastPair called with n < 2")
	}
	x := r.Uint64()
	i = int((x >> 32) * uint64(n) >> 32)
	j = int((x & 0xffffffff) * uint64(n-1) >> 32)
	if j >= i {
		j++
	}
	return i, j
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choose returns k distinct uniform indices from [0, n) in random order,
// sampled without replacement (Floyd's algorithm would also work; for the
// small k used here a partial Fisher-Yates is simplest). It panics if k > n
// or k < 0.
func (r *RNG) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose called with k out of range")
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Exp returns an exponentially distributed value with rate lambda, used by
// the concurrent runtime to jitter gossip periods. It panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp called with lambda <= 0")
	}
	// Inverse transform on (0,1]; 1-Float64() avoids log(0).
	u := 1 - r.Float64()
	return -math.Log(u) / lambda
}
