package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("seed 0 produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish check: each of 10 buckets should get close to 10% of
	// 100k draws. A 5-sigma band on a binomial(1e5, 0.1) is about +-475.
	r := New(99)
	const draws, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 475 {
			t.Errorf("bucket %d: count %d deviates from %d by more than 5 sigma", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) fired")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) did not fire")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) fired")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) did not fire")
	}
	// Empirical rate of p=0.3 over 100k trials: 5-sigma band ~ +-0.0073.
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.0073 {
		t.Errorf("Bernoulli(0.3) empirical rate %v deviates beyond 5 sigma", rate)
	}
}

func TestPairDistinct(t *testing.T) {
	r := New(11)
	for _, n := range []int{2, 3, 5, 40} {
		for k := 0; k < 500; k++ {
			i, j := r.Pair(n)
			if i == j {
				t.Fatalf("Pair(%d) returned equal indices %d", n, i)
			}
			if i < 0 || i >= n || j < 0 || j >= n {
				t.Fatalf("Pair(%d) = (%d,%d) out of range", n, i, j)
			}
		}
	}
}

func TestPairUniformOverOrderedPairs(t *testing.T) {
	// All n*(n-1) ordered pairs should be equally likely (Proposition 5.2
	// depends on this). n=4 -> 12 pairs; 120k draws -> 10k each; 5-sigma
	// band ~ +-479.
	r := New(13)
	const n, draws = 4, 120000
	counts := make(map[[2]int]int)
	for k := 0; k < draws; k++ {
		i, j := r.Pair(n)
		counts[[2]int{i, j}]++
	}
	if len(counts) != n*(n-1) {
		t.Fatalf("observed %d distinct ordered pairs, want %d", len(counts), n*(n-1))
	}
	want := draws / (n * (n - 1))
	for p, c := range counts {
		if math.Abs(float64(c-want)) > 479 {
			t.Errorf("pair %v: count %d deviates from %d by more than 5 sigma", p, c, want)
		}
	}
}

func TestPairPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pair(1) did not panic")
		}
	}()
	New(1).Pair(1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChoose(t *testing.T) {
	r := New(19)
	for _, tc := range []struct{ n, k int }{{5, 0}, {5, 3}, {5, 5}, {40, 2}} {
		got := r.Choose(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("Choose(%d,%d) returned %d items", tc.n, tc.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Choose(%d,%d) = %v invalid", tc.n, tc.k, got)
			}
			seen[v] = true
		}
	}
}

func TestChoosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choose(2,3) did not panic")
		}
	}()
	New(1).Choose(2, 3)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// The child stream should differ from the parent's subsequent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split child matched parent on %d/100 outputs", same)
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(29)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / trials
	// Mean of Exp(rate 2) is 0.5; stderr ~ 0.5/sqrt(trials) ~ 0.0011.
	if math.Abs(mean-0.5) > 0.006 {
		t.Errorf("Exp(2) empirical mean %v, want ~0.5", mean)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(31)
	f := func(n uint16, _ uint8) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPairDistinct(t *testing.T) {
	r := New(37)
	f := func(n uint16) bool {
		m := int(n%100) + 2
		i, j := r.Pair(m)
		return i != j && i >= 0 && i < m && j >= 0 && j < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenVectors(t *testing.T) {
	// Regression pin: the exact output stream for fixed seeds. Experiment
	// results are documented against these streams (EXPERIMENTS.md); a
	// change here silently invalidates every recorded number.
	want42 := []uint64{
		0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1,
		0xfde6dc7fe2ec5e64, 0xc50da53101795238, 0xb82154855a65ddb2, 0xd99a2743ebe60087,
	}
	r := New(42)
	for i, want := range want42 {
		if got := r.Uint64(); got != want {
			t.Fatalf("seed 42 output %d = %#x, want %#x", i, got, want)
		}
	}
	wantNeg := []uint64{0x8f5520d52a7ead08, 0xc476a018caa1802d, 0x81de31c0d260469e, 0xbf658d7e065f3c2f}
	r = New(-1)
	for i, want := range wantNeg {
		if got := r.Uint64(); got != want {
			t.Fatalf("seed -1 output %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	// The motivating collisions of the additive scheme: a rejoining node's
	// stream (cluster seed, u, incarnation 1) must not equal any node's
	// initial stream, and equal-sum part combinations must differ.
	seen := make(map[int64][]int64)
	for u := int64(0); u < 2000; u++ {
		for inc := int64(0); inc < 3; inc++ {
			s := DeriveSeed(1, u, inc)
			if s == 0 {
				t.Fatalf("DeriveSeed(1, %d, %d) = 0", u, inc)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed collision: (1, %d, %d) and %v", u, inc, prev)
			}
			seen[s] = []int64{1, u, inc}
		}
	}
	if DeriveSeed(1, 2) == DeriveSeed(2, 1) {
		t.Error("DeriveSeed is order-insensitive")
	}
	if DeriveSeed(1, 2) != DeriveSeed(1, 2) {
		t.Error("DeriveSeed is not deterministic")
	}
}
