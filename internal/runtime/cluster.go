package runtime

import (
	"fmt"
	"sync"
	"time"

	"sendforget/internal/driver"
	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/transport"
	"sendforget/internal/view"
)

// ClusterConfig parameterizes an in-memory cluster of runtime nodes.
type ClusterConfig struct {
	// N is the number of nodes.
	N int
	// NewCore builds one fresh protocol step core per node. Cores hold
	// per-node state and are never shared across nodes.
	NewCore protocol.CoreFactory
	// InitDegree is the circulant bootstrap outdegree (0 selects an even
	// value of about half the core's view size).
	InitDegree int
	// Loss is the uniform message loss rate of the in-memory network,
	// ignored when Conditions is set.
	Loss float64
	// Conditions, when non-nil, is the fault-injection stack the network
	// consults instead of plain uniform loss: burst models, per-link
	// overrides, partitions, and delivery delay. The instance must be
	// dedicated to this cluster (stateful models would otherwise
	// interleave streams across runs).
	Conditions *faults.Conditions
	// Period is each node's gossip period (for Start; TickRound works
	// without timers). Defaults to 10ms for fast examples.
	Period time.Duration
	// Seed drives the network fault decisions and per-node RNGs.
	Seed int64
}

// Cluster is a set of concurrently running protocol nodes wired through an
// in-memory lossy network.
//
// The node slice is guarded by an RWMutex so churn (RemoveNode/AddNode) is
// safe while other goroutines snapshot views, tick rounds, or sum counters:
// readers copy the slice under the read lock and operate on the copy, so a
// node removed mid-iteration is at worst ticked one extra time — which is
// harmless (it only gossips into a network that no longer routes to it) —
// and never a data race.
//
// sfvet's sharedguard analyzer checks this discipline statically: every
// cross-goroutine access pair to these fields must be lock-excluded,
// happens-before ordered, or provably confined, independent of which
// schedules a -race run happens to take.
type Cluster struct {
	cfg ClusterConfig
	net *transport.Network

	mu     sync.RWMutex
	nodes  []*Node
	roster *driver.Roster // per-node incarnations and seed derivation

	drainStop chan struct{}
	drainWG   sync.WaitGroup
}

// NewCluster wires up the nodes with the circulant bootstrap topology.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("runtime: cluster needs at least 2 nodes, got %d", cfg.N)
	}
	if cfg.NewCore == nil {
		return nil, fmt.Errorf("runtime: cluster needs a core factory")
	}
	if cfg.Period == 0 {
		cfg.Period = 10 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.InitDegree == 0 {
		d, err := defaultInitDegree(cfg.NewCore, cfg.N)
		if err != nil {
			return nil, err
		}
		cfg.InitDegree = d
	}
	if cfg.InitDegree >= cfg.N || cfg.InitDegree < 1 {
		return nil, fmt.Errorf("runtime: init degree %d must be in [1, n-1] for n=%d", cfg.InitDegree, cfg.N)
	}
	cond := cfg.Conditions
	if cond == nil {
		lm, err := loss.NewUniform(cfg.Loss)
		if err != nil {
			return nil, err
		}
		if cond, err = faults.New(lm); err != nil {
			return nil, err
		}
	}
	nw, err := transport.NewNetworkWithConditions(cond, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		net:    nw,
		nodes:  make([]*Node, cfg.N),
		roster: driver.NewRoster(cfg.Seed, cfg.N),
	}
	seeds := make([]peer.ID, cfg.InitDegree)
	for u := 0; u < cfg.N; u++ {
		core, err := cfg.NewCore()
		if err != nil {
			return nil, fmt.Errorf("runtime: core for node %d: %w", u, err)
		}
		driver.Circulant(peer.ID(u), cfg.N, seeds)
		node, err := NewNode(NodeConfig{
			ID:     peer.ID(u),
			Core:   core,
			Period: cfg.Period,
			Seed:   c.roster.SeedFor(peer.ID(u)),
		}, seeds, nw)
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d: %w", u, err)
		}
		c.nodes[u] = node
		nw.Register(peer.ID(u), node.HandleMessage)
	}
	return c, nil
}

// defaultInitDegree derives the circulant bootstrap outdegree from a probe
// core: an even value of about half the view size, clamped to [2, n-1] (and
// kept even under the clamp). Both cluster flavors share it.
func defaultInitDegree(f protocol.CoreFactory, n int) (int, error) {
	probe, err := f()
	if err != nil {
		return 0, fmt.Errorf("runtime: core factory: %w", err)
	}
	d := probe.ViewSize() / 2
	if d%2 != 0 {
		d--
	}
	if d < 2 {
		d = 2
	}
	if d >= n {
		d = n - 1
		if d%2 != 0 {
			d--
		}
	}
	return d, nil
}

// nodesSnapshot copies the node slice under the read lock. Iterating the
// copy keeps long operations (ticking a round, snapshotting views) off the
// lock so churn never waits behind them.
func (c *Cluster) nodesSnapshot() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Nodes returns a snapshot of the cluster's node slice (nil entries for
// departed nodes). The copy is the caller's to keep; it does not observe
// later churn.
func (c *Cluster) Nodes() []*Node { return c.nodesSnapshot() }

// Network returns the underlying in-memory network.
func (c *Cluster) Network() *transport.Network { return c.net }

// Conditions returns the network's fault-injection stack for mid-run
// reconfiguration (partitions, link overrides).
func (c *Cluster) Conditions() *faults.Conditions { return c.net.Conditions() }

// Start launches every node's gossip loop plus a drain timer that advances
// the network's delay queue once per period.
func (c *Cluster) Start() {
	c.mu.Lock()
	if c.drainStop == nil {
		c.drainStop = make(chan struct{})
		c.drainWG.Add(1)
		go func(stop chan struct{}) {
			defer c.drainWG.Done()
			ticker := time.NewTicker(c.cfg.Period)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					c.net.Advance()
				}
			}
		}(c.drainStop)
	}
	c.mu.Unlock()
	for _, n := range c.nodesSnapshot() {
		if n != nil {
			n.Start()
		}
	}
}

// Stop terminates every node and the drain timer.
func (c *Cluster) Stop() {
	for _, n := range c.nodesSnapshot() {
		if n != nil {
			n.Stop()
		}
	}
	c.mu.Lock()
	stop := c.drainStop
	c.drainStop = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		c.drainWG.Wait()
	}
}

// TickRound drives one synchronous round — the network delivers the delayed
// messages that came due, then every live node initiates once — for
// deterministic tests and examples that do not want wall-clock timers.
func (c *Cluster) TickRound() {
	c.net.Advance()
	for _, n := range c.nodesSnapshot() {
		if n != nil {
			n.Tick()
		}
	}
}

// DrainDelayed advances the network clock without ticking any node until
// the delay queue is empty, delivering everything in flight — the cluster
// counterpart of Engine.DrainDelayed, run at the end of a comparison so the
// traffic identity (metrics.Traffic.Conserved) holds exactly. Replies
// generated by drained deliveries may be re-delayed; the loop runs until
// those settle too.
func (c *Cluster) DrainDelayed() {
	for c.net.Pending() > 0 {
		c.net.Advance()
	}
}

// Pending returns the number of messages parked in the network delay queue.
func (c *Cluster) Pending() int { return c.net.Pending() }

// Close stops every node and the drain timer, releasing the cluster's
// goroutines. The Substrate counterpart of Stop; idempotent.
func (c *Cluster) Close() { c.Stop() }

// Views snapshots all node views (nil entries for departed nodes).
func (c *Cluster) Views() []*view.View {
	nodes := c.nodesSnapshot()
	out := make([]*view.View, len(nodes))
	for i, n := range nodes {
		if n != nil {
			out[i] = n.ViewSnapshot()
		}
	}
	return out
}

// Snapshot returns the current membership graph.
func (c *Cluster) Snapshot() *graph.Graph {
	return graph.FromViews(c.Views())
}

// Counters sums the per-node counters over all live nodes.
func (c *Cluster) Counters() NodeCounters {
	var sum NodeCounters
	for _, n := range c.nodesSnapshot() {
		if n == nil {
			continue
		}
		nc := n.Counters()
		sum.Ticks += nc.Ticks
		sum.SelfLoops += nc.SelfLoops
		sum.Sends += nc.Sends
		sum.Duplications += nc.Duplications
		sum.Receives += nc.Receives
		sum.Replies += nc.Replies
		sum.SendErrors += nc.SendErrors
	}
	return sum
}

// Traffic reports the network counters in the substrate-neutral shape
// shared with the sequential engine (see metrics.Traffic for the unified
// counting semantics).
func (c *Cluster) Traffic() metrics.Traffic {
	nc := c.net.Counters()
	return metrics.Traffic{
		Sends:          nc.Sent,
		Losses:         nc.Lost,
		Deliveries:     nc.Delivered,
		DeadLetters:    nc.NoRoute,
		LinkLosses:     nc.LinkLost,
		PartitionDrops: nc.PartitionDropped,
		Delayed:        nc.Delayed,
	}
}

// CheckInvariants validates the protocol's per-view invariant (Observation
// 5.1 for S&F) on every node.
func (c *Cluster) CheckInvariants() error {
	for _, n := range c.nodesSnapshot() {
		if n == nil {
			continue
		}
		if err := n.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// RemoveNode makes node u leave the cluster: its gossip loop stops and it
// drops off the network, exactly the paper's leave semantics (no protocol
// action). Its id decays from the other views per Lemma 6.10. Idempotent,
// and safe to call while the cluster is running.
func (c *Cluster) RemoveNode(u peer.ID) {
	c.mu.Lock()
	if int(u) < 0 || int(u) >= len(c.nodes) || c.nodes[u] == nil {
		c.mu.Unlock()
		return
	}
	node := c.nodes[u]
	c.nodes[u] = nil
	c.mu.Unlock()
	// Unregister and stop outside the cluster lock: Stop waits for an
	// in-flight Tick, which may be blocked in a receive handler.
	c.net.Register(u, nil)
	node.Stop()
}

// AddNode (re)activates node u with the given seed ids (at least
// max(2, dL), per the paper's join rule) and starts its gossip loop when
// start is set; callers driving TickRound manually simply include it in
// subsequent rounds. Each activation gets a fresh RNG stream derived from
// (cluster seed, id, incarnation). Safe to call while the cluster is
// running.
func (c *Cluster) AddNode(u peer.ID, seeds []peer.ID, start bool) error {
	c.mu.Lock()
	if int(u) < 0 || int(u) >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("runtime: node id %v outside cluster universe", u)
	}
	if c.nodes[u] != nil {
		c.mu.Unlock()
		return fmt.Errorf("runtime: node %v is already active", u)
	}
	core, err := c.cfg.NewCore()
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("runtime: core for node %v: %w", u, err)
	}
	c.roster.Bump(u)
	node, err := NewNode(NodeConfig{
		ID:     u,
		Core:   core,
		Period: c.cfg.Period,
		Seed:   c.roster.SeedFor(u),
	}, seeds, c.net)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.nodes[u] = node
	c.mu.Unlock()
	c.net.Register(u, node.HandleMessage)
	if start {
		node.Start()
	}
	return nil
}
