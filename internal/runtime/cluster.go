package runtime

import (
	"fmt"
	"time"

	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/transport"
	"sendforget/internal/view"
)

// ClusterConfig parameterizes an in-memory cluster of runtime nodes.
type ClusterConfig struct {
	// N is the number of nodes.
	N int
	// NewCore builds one fresh protocol step core per node. Cores hold
	// per-node state and are never shared across nodes.
	NewCore protocol.CoreFactory
	// InitDegree is the circulant bootstrap outdegree (0 selects an even
	// value of about half the core's view size).
	InitDegree int
	// Loss is the uniform message loss rate of the in-memory network.
	Loss float64
	// Period is each node's gossip period (for Start; TickRound works
	// without timers). Defaults to 10ms for fast examples.
	Period time.Duration
	// Seed drives the network loss and per-node RNGs.
	Seed int64
}

// Cluster is a set of concurrently running protocol nodes wired through an
// in-memory lossy network.
type Cluster struct {
	cfg   ClusterConfig
	net   *transport.Network
	nodes []*Node
}

// NewCluster wires up the nodes with the circulant bootstrap topology.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("runtime: cluster needs at least 2 nodes, got %d", cfg.N)
	}
	if cfg.NewCore == nil {
		return nil, fmt.Errorf("runtime: cluster needs a core factory")
	}
	if cfg.Period == 0 {
		cfg.Period = 10 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.InitDegree == 0 {
		probe, err := cfg.NewCore()
		if err != nil {
			return nil, fmt.Errorf("runtime: core factory: %w", err)
		}
		d := probe.ViewSize() / 2
		if d%2 != 0 {
			d--
		}
		if d < 2 {
			d = 2
		}
		if d >= cfg.N {
			d = cfg.N - 1
			if d%2 != 0 {
				d--
			}
		}
		cfg.InitDegree = d
	}
	if cfg.InitDegree >= cfg.N || cfg.InitDegree < 1 {
		return nil, fmt.Errorf("runtime: init degree %d must be in [1, n-1] for n=%d", cfg.InitDegree, cfg.N)
	}
	lm, err := loss.NewUniform(cfg.Loss)
	if err != nil {
		return nil, err
	}
	nw, err := transport.NewNetwork(lm, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, net: nw, nodes: make([]*Node, cfg.N)}
	for u := 0; u < cfg.N; u++ {
		core, err := cfg.NewCore()
		if err != nil {
			return nil, fmt.Errorf("runtime: core for node %d: %w", u, err)
		}
		seeds := make([]peer.ID, cfg.InitDegree)
		for k := range seeds {
			seeds[k] = peer.ID((u + k + 1) % cfg.N)
		}
		node, err := NewNode(NodeConfig{
			ID:     peer.ID(u),
			Core:   core,
			Period: cfg.Period,
			Seed:   cfg.Seed + int64(u) + 1,
		}, seeds, nw)
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d: %w", u, err)
		}
		c.nodes[u] = node
		nw.Register(peer.ID(u), node.HandleMessage)
	}
	return c, nil
}

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Network returns the underlying in-memory network.
func (c *Cluster) Network() *transport.Network { return c.net }

// Start launches every node's gossip loop.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		if n != nil {
			n.Start()
		}
	}
}

// Stop terminates every node.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		if n != nil {
			n.Stop()
		}
	}
}

// TickRound drives one synchronous round — every live node initiates once —
// for deterministic tests and examples that do not want wall-clock timers.
func (c *Cluster) TickRound() {
	for _, n := range c.nodes {
		if n != nil {
			n.Tick()
		}
	}
}

// Views snapshots all node views (nil entries for departed nodes).
func (c *Cluster) Views() []*view.View {
	out := make([]*view.View, len(c.nodes))
	for i, n := range c.nodes {
		if n != nil {
			out[i] = n.ViewSnapshot()
		}
	}
	return out
}

// Snapshot returns the current membership graph.
func (c *Cluster) Snapshot() *graph.Graph {
	return graph.FromViews(c.Views())
}

// Counters sums the per-node counters over all live nodes.
func (c *Cluster) Counters() NodeCounters {
	var sum NodeCounters
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		nc := n.Counters()
		sum.Ticks += nc.Ticks
		sum.SelfLoops += nc.SelfLoops
		sum.Sends += nc.Sends
		sum.Duplications += nc.Duplications
		sum.Receives += nc.Receives
		sum.Replies += nc.Replies
		sum.SendErrors += nc.SendErrors
	}
	return sum
}

// Traffic reports the network counters in the substrate-neutral shape
// shared with the sequential engine.
func (c *Cluster) Traffic() metrics.Traffic {
	nc := c.net.Counters()
	return metrics.Traffic{
		Sends:       nc.Sent,
		Losses:      nc.Lost,
		Deliveries:  nc.Delivered,
		DeadLetters: nc.NoRoute,
	}
}

// CheckInvariants validates the protocol's per-view invariant (Observation
// 5.1 for S&F) on every node.
func (c *Cluster) CheckInvariants() error {
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if err := n.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// RemoveNode makes node u leave the cluster: its gossip loop stops and it
// drops off the network, exactly the paper's leave semantics (no protocol
// action). Its id decays from the other views per Lemma 6.10. Idempotent.
func (c *Cluster) RemoveNode(u peer.ID) {
	if int(u) < 0 || int(u) >= len(c.nodes) || c.nodes[u] == nil {
		return
	}
	c.nodes[u].Stop()
	c.net.Register(u, nil)
	c.nodes[u] = nil
}

// AddNode (re)activates node u with the given seed ids (at least
// max(2, dL), per the paper's join rule) and starts its gossip loop when
// the cluster is running; callers driving TickRound manually simply include
// it in subsequent rounds.
func (c *Cluster) AddNode(u peer.ID, seeds []peer.ID, start bool) error {
	if int(u) < 0 || int(u) >= len(c.nodes) {
		return fmt.Errorf("runtime: node id %v outside cluster universe", u)
	}
	if c.nodes[u] != nil {
		return fmt.Errorf("runtime: node %v is already active", u)
	}
	core, err := c.cfg.NewCore()
	if err != nil {
		return fmt.Errorf("runtime: core for node %v: %w", u, err)
	}
	node, err := NewNode(NodeConfig{
		ID:     u,
		Core:   core,
		Period: c.cfg.Period,
		Seed:   c.cfg.Seed + int64(u) + 7919, // distinct stream on rejoin
	}, seeds, c.net)
	if err != nil {
		return err
	}
	c.nodes[u] = node
	c.net.Register(u, node.HandleMessage)
	if start {
		node.Start()
	}
	return nil
}
