// Package runtime is the concurrent implementation of the gossip membership
// protocols: one goroutine per node, periodic action initiation, and
// fire-and-forget messaging over a transport — the deployment shape Section
// 5 describes ("each node periodically invoking its InitiateAction method at
// the same frequency at all nodes").
//
// Every protocol decision is made by a protocol.StepCore — the same step
// cores the sequential simulator's adapters delegate to; the runtime adds
// only concurrency, timers, and transport. Proposition 5.2 is what licenses
// sharing the cores: the serial scheduler and the concurrent fire-and-forget
// deployment induce the same protocol behavior.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Sender transmits a message toward a node id. Both transport.Network and
// transport.Endpoint satisfy it.
type Sender interface {
	Send(to peer.ID, msg protocol.Message) error
}

// NodeConfig parameterizes one runtime node.
type NodeConfig struct {
	// ID is this node's identity.
	ID peer.ID
	// Core is the per-node protocol step core. It must be a fresh instance:
	// the node serializes access through its own lock, so a core shared with
	// another node would race.
	Core protocol.StepCore
	// Period is the gossip period between initiated actions (used by
	// Start; Tick can be driven manually instead). Defaults to 100ms.
	Period time.Duration
	// Seed seeds the node's private RNG; 0 derives one from the id.
	Seed int64
}

func (c NodeConfig) validate() error {
	if c.Core == nil {
		return fmt.Errorf("runtime: nil step core")
	}
	return nil
}

// NodeCounters tallies one node's protocol events. They are
// protocol-agnostic; protocol-specific tallies (duplications vs. evictions
// vs. undeletions) live in the concrete core, which the caller retains.
type NodeCounters struct {
	Ticks        int
	SelfLoops    int
	Sends        int
	Duplications int
	Receives     int
	Replies      int
	SendErrors   int
}

// Node is a single protocol participant. All state is private and protected
// by one mutex; sends happen outside the lock so that two nodes gossiping
// at each other cannot deadlock.
type Node struct {
	cfg  NodeConfig
	core protocol.StepCore
	out  Sender

	mu       sync.Mutex
	lv       *view.View
	r        *rng.RNG
	counters NodeCounters

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup

	// periodNS is the current gossip period in nanoseconds, readable
	// while the loop runs; reset carries live period changes to the
	// gossip loop (capacity 1, latest value wins).
	periodNS atomic.Int64
	reset    chan time.Duration
}

// NewNode builds a node whose initial view is seeded by the core ("a joining
// node has to know at least dL ids of live nodes"). The core decides how
// many seeds are usable and errors when too few are given.
func NewNode(cfg NodeConfig, seeds []peer.ID, out Sender) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("runtime: nil sender")
	}
	if cfg.Period == 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		// Hash rather than ID+1: the additive fallback collided with
		// explicitly chosen small seeds on other nodes.
		cfg.Seed = rng.DeriveSeed(int64(cfg.ID))
	}
	lv, err := cfg.Core.SeedView(seeds)
	if err != nil {
		return nil, fmt.Errorf("runtime: node %v: %w", cfg.ID, err)
	}
	n := &Node{
		cfg:   cfg,
		core:  cfg.Core,
		out:   out,
		lv:    lv,
		r:     rng.New(cfg.Seed),
		stop:  make(chan struct{}),
		reset: make(chan time.Duration, 1),
	}
	n.periodNS.Store(int64(cfg.Period))
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() peer.ID { return n.cfg.ID }

// Tick initiates one protocol action: the initiate step runs under the node
// lock, the sends outside it.
func (n *Node) Tick() {
	n.mu.Lock()
	n.counters.Ticks++
	msgs, ok := n.core.Initiate(n.lv, n.cfg.ID, n.r)
	if !ok {
		n.counters.SelfLoops++
		n.mu.Unlock()
		return
	}
	n.counters.Sends += len(msgs)
	for _, m := range msgs {
		if m.Msg.Dup {
			n.counters.Duplications++
		}
	}
	n.mu.Unlock()

	errs := 0
	for _, m := range msgs {
		if err := n.out.Send(m.To, m.Msg); err != nil {
			errs++
		}
	}
	if errs > 0 {
		n.mu.Lock()
		n.counters.SendErrors += errs
		n.mu.Unlock()
	}
}

// HandleMessage is the transport receive handler: the protocol's receive
// step under the lock, with any reply (request/reply protocols such as
// shuffle and flipper) sent outside it. Reply chains terminate because
// replies never generate further replies.
func (n *Node) HandleMessage(msg protocol.Message) {
	n.mu.Lock()
	n.counters.Receives++
	reply, ok := n.core.Receive(n.lv, n.cfg.ID, msg, n.r)
	if ok {
		n.counters.Replies++
	}
	n.mu.Unlock()

	if ok {
		if err := n.out.Send(reply.To, reply.Msg); err != nil {
			n.mu.Lock()
			n.counters.SendErrors++
			n.mu.Unlock()
		}
	}
}

// Start launches the periodic gossip loop. It is idempotent.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ticker := time.NewTicker(time.Duration(n.periodNS.Load()))
			defer ticker.Stop()
			for {
				select {
				case <-n.stop:
					return
				case d := <-n.reset:
					ticker.Reset(d)
				case <-ticker.C:
					n.Tick()
				}
			}
		}()
	})
}

// Period returns the current gossip period.
func (n *Node) Period() time.Duration { return time.Duration(n.periodNS.Load()) }

// SetPeriod changes the gossip period live — the management API's config
// reload path. The running loop picks the new period up on its next select;
// if the loop has not started yet, Start uses the latest value. Latest call
// wins when several race.
func (n *Node) SetPeriod(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("runtime: node period must be positive, got %v", d)
	}
	n.periodNS.Store(int64(d))
	for {
		select {
		case n.reset <- d:
			return nil
		default:
			// Displace a stale pending reset so the newest value lands.
			select {
			case <-n.reset:
			default:
			}
		}
	}
}

// Stop terminates the gossip loop and waits for it. Leaving the system
// needs nothing more — per the paper, leavers "simply stop participating in
// the protocol". Idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// ViewSnapshot returns a copy of the node's current view.
func (n *Node) ViewSnapshot() *view.View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lv.Clone()
}

// Counters returns a copy of the node's counters.
func (n *Node) Counters() NodeCounters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters
}

// CheckInvariants verifies the protocol's per-view invariant (Observation
// 5.1 for S&F) on the live view.
func (n *Node) CheckInvariants() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.core.CheckView(n.lv); err != nil {
		return fmt.Errorf("runtime: node %v: %w", n.cfg.ID, err)
	}
	return nil
}
