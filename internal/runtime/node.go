// Package runtime is the concurrent implementation of S&F: one goroutine
// per node, periodic action initiation, and fire-and-forget messaging over
// a transport — the deployment shape Section 5 describes ("each node
// periodically invoking its InitiateAction method at the same frequency at
// all nodes").
//
// Every protocol decision is made by the same step functions
// (sendforget.InitiateStep / ReceiveStep) the sequential simulator uses;
// the runtime adds only concurrency, timers, and transport.
package runtime

import (
	"fmt"
	"sync"
	"time"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Sender transmits a message toward a node id. Both transport.Network and
// transport.Endpoint satisfy it.
type Sender interface {
	Send(to peer.ID, msg protocol.Message) error
}

// NodeConfig parameterizes one runtime node.
type NodeConfig struct {
	// ID is this node's identity.
	ID peer.ID
	// S is the view size (even, >= 6); DL the duplication threshold (even,
	// 0 <= DL <= S-6).
	S, DL int
	// Period is the gossip period between initiated actions (used by
	// Start; Tick can be driven manually instead). Defaults to 100ms.
	Period time.Duration
	// Seed seeds the node's private RNG; 0 derives one from the id.
	Seed int64
}

func (c NodeConfig) validate() error {
	if c.S < 6 || c.S%2 != 0 {
		return fmt.Errorf("runtime: view size s must be even >= 6, got %d", c.S)
	}
	if c.DL < 0 || c.DL > c.S-6 || c.DL%2 != 0 {
		return fmt.Errorf("runtime: threshold dL must be even in [0, s-6], got %d", c.DL)
	}
	return nil
}

// NodeCounters tallies one node's protocol events.
type NodeCounters struct {
	Ticks        int
	SelfLoops    int
	Sends        int
	Duplications int
	Receives     int
	Deletions    int
	SendErrors   int
}

// Node is a single S&F participant. All state is private and protected by
// one mutex; the send happens outside the lock so that two nodes gossiping
// at each other cannot deadlock.
type Node struct {
	cfg NodeConfig
	out Sender

	mu       sync.Mutex
	lv       *view.View
	r        *rng.RNG
	counters NodeCounters

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewNode builds a node whose initial view holds the seed ids ("a joining
// node has to know at least dL ids of live nodes"). Seeds beyond s are
// dropped; an odd count is truncated to keep the outdegree even.
func NewNode(cfg NodeConfig, seeds []peer.ID, out Sender) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("runtime: nil sender")
	}
	if cfg.Period == 0 {
		cfg.Period = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1
	}
	k := len(seeds)
	if k > cfg.S {
		k = cfg.S
	}
	if k%2 != 0 {
		k--
	}
	if k < cfg.DL || k < 2 {
		return nil, fmt.Errorf("runtime: node %v needs at least max(2, dL=%d) seeds, got %d usable", cfg.ID, cfg.DL, k)
	}
	lv := view.New(cfg.S)
	for i := 0; i < k; i++ {
		lv.Set(i, seeds[i])
	}
	return &Node{
		cfg:  cfg,
		out:  out,
		lv:   lv,
		r:    rng.New(cfg.Seed),
		stop: make(chan struct{}),
	}, nil
}

// ID returns the node's identity.
func (n *Node) ID() peer.ID { return n.cfg.ID }

// Tick initiates one S&F action: the initiate step runs under the node
// lock, the send outside it.
func (n *Node) Tick() {
	n.mu.Lock()
	n.counters.Ticks++
	send, _, ok := sendforget.InitiateStep(n.lv, n.cfg.ID, n.cfg.DL, n.r)
	if !ok {
		n.counters.SelfLoops++
		n.mu.Unlock()
		return
	}
	n.counters.Sends++
	if send.Dup {
		n.counters.Duplications++
	}
	n.mu.Unlock()

	msg := protocol.Message{
		Kind: protocol.KindGossip,
		From: n.cfg.ID,
		IDs:  []peer.ID{send.IDs[0], send.IDs[1]},
		Dup:  send.Dup,
	}
	if err := n.out.Send(send.To, msg); err != nil {
		n.mu.Lock()
		n.counters.SendErrors++
		n.mu.Unlock()
	}
}

// HandleMessage is the transport receive handler: the S&F receive step.
func (n *Node) HandleMessage(msg protocol.Message) {
	if msg.Kind != protocol.KindGossip || len(msg.IDs) != 2 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.counters.Receives++
	if _, stored := sendforget.ReceiveStep(n.lv, n.cfg.S, [2]peer.ID{msg.IDs[0], msg.IDs[1]}, n.r); !stored {
		n.counters.Deletions++
	}
}

// Start launches the periodic gossip loop. It is idempotent.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ticker := time.NewTicker(n.cfg.Period)
			defer ticker.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-ticker.C:
					n.Tick()
				}
			}
		}()
	})
}

// Stop terminates the gossip loop and waits for it. Leaving the system
// needs nothing more — per the paper, leavers "simply stop participating in
// the protocol". Idempotent.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// ViewSnapshot returns a copy of the node's current view.
func (n *Node) ViewSnapshot() *view.View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lv.Clone()
}

// Counters returns a copy of the node's counters.
func (n *Node) Counters() NodeCounters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters
}

// CheckInvariants verifies Observation 5.1 on the live view.
func (n *Node) CheckInvariants() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.lv.CheckInvariants(); err != nil {
		return err
	}
	d := n.lv.Outdegree()
	if d%2 != 0 || d < n.cfg.DL || d > n.cfg.S {
		return fmt.Errorf("runtime: node %v outdegree %d violates Observation 5.1 (dL=%d, s=%d)", n.cfg.ID, d, n.cfg.DL, n.cfg.S)
	}
	return nil
}
