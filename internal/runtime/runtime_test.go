package runtime_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sendforget/internal/faults"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
)

// recorder is a Sender capturing messages.
type recorder struct {
	mu   sync.Mutex
	msgs []protocol.Message
	tos  []peer.ID
	err  error
}

func (r *recorder) Send(to peer.ID, msg protocol.Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, msg)
	r.tos = append(r.tos, to)
	return r.err
}

// sfCore builds a fresh S&F step core or fails the test.
func sfCore(t *testing.T, s, dl int) *sendforget.Core {
	t.Helper()
	core, err := sendforget.NewCore(s, dl)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// sfFactory is the S&F core factory used by the cluster tests.
func sfFactory(s, dl int) protocol.CoreFactory {
	return func() (protocol.StepCore, error) { return sendforget.NewCore(s, dl) }
}

func TestNodeConfigValidation(t *testing.T) {
	rec := &recorder{}
	seeds := []peer.ID{1, 2}
	if _, err := runtime.NewNode(runtime.NodeConfig{ID: 0}, seeds, rec); err == nil {
		t.Error("accepted nil core")
	}
	if _, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: sfCore(t, 8, 0)}, seeds, nil); err == nil {
		t.Error("accepted nil sender")
	}
	if _, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: sfCore(t, 8, 2)}, []peer.ID{1}, rec); err == nil {
		t.Error("accepted too few seeds")
	}
	if _, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: sfCore(t, 8, 2)}, seeds, rec); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestNodeTickSendsAndClears(t *testing.T) {
	rec := &recorder{}
	n, err := runtime.NewNode(runtime.NodeConfig{ID: 5, Core: sfCore(t, 6, 0)}, []peer.ID{1, 2, 3, 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && len(rec.msgs) == 0; i++ {
		n.Tick()
	}
	if len(rec.msgs) == 0 {
		t.Fatal("no message sent in 200 ticks")
	}
	msg := rec.msgs[0]
	if msg.From != 5 || msg.IDs[0] != 5 {
		t.Errorf("message = %+v, want From/first id = n5", msg)
	}
	if msg.Dup {
		t.Error("dup flagged with dL=0 and degree 4")
	}
	if got := n.ViewSnapshot().Outdegree(); got != 2 {
		t.Errorf("outdegree after send = %d, want 2", got)
	}
	c := n.Counters()
	if c.Sends != 1 || c.Ticks != c.Sends+c.SelfLoops {
		t.Errorf("counters = %+v", c)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNodeHandleMessage(t *testing.T) {
	rec := &recorder{}
	core := sfCore(t, 6, 0)
	n, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: core}, []peer.ID{1, 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 3, IDs: []peer.ID{3, 4}})
	v := n.ViewSnapshot()
	if !v.Contains(3) || !v.Contains(4) {
		t.Errorf("view %v missing delivered ids", v)
	}
	// Malformed messages are ignored by the S&F core.
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 3, IDs: []peer.ID{3}})
	n.HandleMessage(protocol.Message{Kind: protocol.KindRequest, From: 3, IDs: []peer.ID{3, 4}})
	if got := n.ViewSnapshot().Outdegree(); got != 4 {
		t.Errorf("outdegree after malformed messages = %d, want 4", got)
	}
	// Full view: deletion, tallied by the caller-retained core.
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 5, IDs: []peer.ID{5, 1}})
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 6, IDs: []peer.ID{6, 1}})
	if got := core.Counters().Deletions; got != 1 {
		t.Errorf("core Deletions = %d, want 1", got)
	}
	// The node counts every delivered datagram; the core decides which are
	// protocol-meaningful.
	if c := n.Counters(); c.Receives != 5 || c.Replies != 0 {
		t.Errorf("node counters = %+v, want 5 receives and no replies", c)
	}
}

func TestNodeRepliesOutsideLock(t *testing.T) {
	// A request/reply core (shuffle) on the runtime node: the reply must be
	// emitted through the sender and counted.
	rec := &recorder{}
	core, err := shuffle.NewCore(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: core}, []peer.ID{1, 2, 3, 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	n.HandleMessage(protocol.Message{Kind: protocol.KindRequest, From: 7, IDs: []peer.ID{7, 9}})
	if c := n.Counters(); c.Replies != 1 {
		t.Fatalf("node counters = %+v, want 1 reply", c)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.msgs) != 1 || rec.msgs[0].Kind != protocol.KindReply || rec.tos[0] != 7 {
		t.Errorf("reply = %+v to %v, want KindReply to 7", rec.msgs, rec.tos)
	}
}

func TestNodeSendErrorCounted(t *testing.T) {
	rec := &recorder{err: fmt.Errorf("boom")}
	n, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: sfCore(t, 6, 0)}, []peer.ID{1, 2, 3, 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && n.Counters().SendErrors == 0; i++ {
		n.Tick()
	}
	if n.Counters().SendErrors == 0 {
		t.Error("send errors not counted")
	}
}

func TestNodeStartStopIdempotent(t *testing.T) {
	rec := &recorder{}
	n, err := runtime.NewNode(runtime.NodeConfig{ID: 0, Core: sfCore(t, 6, 0), Period: time.Millisecond}, []peer.ID{1, 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Start()
	time.Sleep(20 * time.Millisecond)
	n.Stop()
	n.Stop()
	if n.Counters().Ticks == 0 {
		t.Error("no ticks after Start")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := runtime.NewCluster(runtime.ClusterConfig{N: 1, NewCore: sfFactory(8, 0)}); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := runtime.NewCluster(runtime.ClusterConfig{N: 4, NewCore: sfFactory(8, 0), InitDegree: 4}); err == nil {
		t.Error("accepted init degree >= n")
	}
	if _, err := runtime.NewCluster(runtime.ClusterConfig{N: 10, NewCore: sfFactory(8, 0), Loss: 1.5}); err == nil {
		t.Error("accepted loss > 1")
	}
	if _, err := runtime.NewCluster(runtime.ClusterConfig{N: 10}); err == nil {
		t.Error("accepted nil core factory")
	}
}

func TestClusterTickRounds(t *testing.T) {
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 40, NewCore: sfFactory(12, 4), Loss: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Snapshot().WeaklyConnected() {
		t.Fatal("bootstrap topology disconnected")
	}
	for round := 0; round < 200; round++ {
		c.TickRound()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g := c.Snapshot()
	if !g.WeaklyConnected() {
		t.Errorf("cluster disconnected after 200 rounds: %d components", g.ComponentCount())
	}
	tr := c.Traffic()
	if tr.Sends == 0 || tr.Losses == 0 || tr.Deliveries == 0 {
		t.Errorf("traffic = %+v", tr)
	}
	if tr.LossRate() < 0.02 || tr.LossRate() > 0.09 {
		t.Errorf("empirical loss rate %v, want ~0.05", tr.LossRate())
	}
	nc := c.Counters()
	if nc.Ticks == 0 || nc.Sends != tr.Sends || nc.Receives != tr.Deliveries {
		t.Errorf("aggregate node counters %+v inconsistent with traffic %+v", nc, tr)
	}
}

func TestClusterConcurrent(t *testing.T) {
	// Real goroutines + timers: run briefly, then verify invariants. This
	// is the race-detector workout for the lock discipline.
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 20, NewCore: sfFactory(12, 4), Loss: 0.02, Period: time.Millisecond, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(150 * time.Millisecond)
	c.Stop()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ticks := c.Counters().Ticks; ticks < 20 {
		t.Errorf("only %d ticks across the cluster", ticks)
	}
}

func TestClusterNodeDeparture(t *testing.T) {
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 30, NewCore: sfFactory(12, 4), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 leaves: stops participating and drops off the network.
	c.Nodes()[3].Stop()
	c.Network().Register(3, nil)
	for round := 0; round < 400; round++ {
		for u, n := range c.Nodes() {
			if u != 3 {
				n.Tick()
			}
		}
	}
	// The departed id decays from the live views (Lemma 6.10). Its own
	// view still lists peers but nobody routes to it.
	instances := 0
	for u, v := range c.Views() {
		if u == 3 {
			continue
		}
		instances += v.Multiplicity(3)
	}
	if instances > 3 {
		t.Errorf("departed id still has %d instances after 400 rounds", instances)
	}
}

func TestNodesOverUDP(t *testing.T) {
	// End-to-end: 6 S&F nodes on localhost UDP, full mesh directory,
	// manual ticking (deterministic), real datagrams.
	const n = 6
	nodes := make([]*runtime.Node, n)
	eps := make([]*transport.Endpoint, n)
	for u := 0; u < n; u++ {
		u := u
		ep, err := transport.NewEndpoint("127.0.0.1:0", func(m protocol.Message) {
			nodes[u].HandleMessage(m)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[u] = ep
	}
	for u := 0; u < n; u++ {
		seeds := []peer.ID{peer.ID((u + 1) % n), peer.ID((u + 2) % n)}
		node, err := runtime.NewNode(runtime.NodeConfig{ID: peer.ID(u), Core: sfCore(t, 8, 2)}, seeds, eps[u])
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = node
		for v := 0; v < n; v++ {
			if v != u {
				if err := eps[u].AddPeer(peer.ID(v), eps[v].Addr().String()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for round := 0; round < 50; round++ {
		for _, node := range nodes {
			node.Tick()
		}
		time.Sleep(2 * time.Millisecond) // let datagrams land
	}
	time.Sleep(50 * time.Millisecond)
	received := 0
	for _, node := range nodes {
		if err := node.CheckInvariants(); err != nil {
			t.Error(err)
		}
		received += node.Counters().Receives
	}
	if received == 0 {
		t.Fatal("no UDP gossip was received")
	}
}

func TestClusterRemoveAddNode(t *testing.T) {
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 30, NewCore: sfFactory(12, 4), Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	c.RemoveNode(5)
	c.RemoveNode(5)  // idempotent
	c.RemoveNode(99) // out of range: no-op
	if c.Nodes()[5] != nil {
		t.Fatal("node 5 still present after RemoveNode")
	}
	for round := 0; round < 300; round++ {
		c.TickRound()
	}
	// The departed id decays from live views.
	instances := 0
	for u, v := range c.Views() {
		if u == 5 || v == nil {
			continue
		}
		instances += v.Multiplicity(5)
	}
	if instances > 2 {
		t.Errorf("departed id retains %d instances", instances)
	}
	// Rejoin with live seeds.
	if err := c.AddNode(5, []peer.ID{0, 1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(5, []peer.ID{0, 1}, false); err == nil {
		t.Error("double AddNode accepted")
	}
	if err := c.AddNode(99, []peer.ID{0, 1}, false); err == nil {
		t.Error("out-of-range AddNode accepted")
	}
	for round := 0; round < 100; round++ {
		c.TickRound()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The rejoined node reintegrates: others hold its id again.
	instances = 0
	for u, v := range c.Views() {
		if u == 5 || v == nil {
			continue
		}
		instances += v.Multiplicity(5)
	}
	if instances == 0 {
		t.Error("rejoined node acquired no in-neighbors")
	}
	g := c.Snapshot()
	if !g.WeaklyConnected() {
		t.Errorf("cluster disconnected after churn: %d components", g.ComponentCount())
	}
}

func TestClusterAddNodeStarted(t *testing.T) {
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 10, NewCore: sfFactory(8, 2), Period: time.Millisecond, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RemoveNode(3)
	if err := c.AddNode(3, []peer.ID{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	c.Stop()
	if c.Nodes()[3].Counters().Ticks == 0 {
		t.Error("restarted node never ticked")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterChurnUnderLoss is the churn-and-loss workout: nodes join and
// leave while the in-memory network drops a tenth of all messages, and the
// protocol invariant must hold at every round boundary (Observation 5.1 is
// loss- and churn-independent).
func TestClusterChurnUnderLoss(t *testing.T) {
	const n = 40
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: n, NewCore: sfFactory(12, 4), Loss: 0.1, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	departed := []peer.ID{7, 19, 33}
	for round := 0; round < 600; round++ {
		switch round {
		case 100:
			for _, u := range departed {
				c.RemoveNode(u)
			}
		case 300:
			// Rejoin node 7 seeded from a live node's view, per the paper's
			// join rule (copy at least max(2, dL) live ids).
			seeds := c.Nodes()[0].ViewSnapshot().IDs()
			if err := c.AddNode(7, seeds, false); err != nil {
				t.Fatalf("round %d: rejoin failed with seeds %v: %v", round, seeds, err)
			}
		}
		c.TickRound()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// The permanently departed ids drained from live views...
	for _, u := range []peer.ID{19, 33} {
		instances := 0
		for w, v := range c.Views() {
			if peer.ID(w) == u || v == nil {
				continue
			}
			instances += v.Multiplicity(u)
		}
		if instances > 2 {
			t.Errorf("departed id %v retains %d instances after 500 rounds", u, instances)
		}
	}
	// ...the rejoined node reintegrated...
	instances := 0
	for w, v := range c.Views() {
		if w == 7 || v == nil {
			continue
		}
		instances += v.Multiplicity(7)
	}
	if instances == 0 {
		t.Error("rejoined node 7 acquired no in-neighbors")
	}
	// ...and the live overlay stayed usable despite 10% loss.
	if tr := c.Traffic(); tr.Losses == 0 || tr.LossRate() < 0.05 {
		t.Errorf("traffic %+v does not reflect the configured loss", tr)
	}
}

// TestClusterChurnWhileSnapshotting is the churn race workout: snapshot,
// tick, counter, and invariant readers run full-tilt while nodes are removed
// and re-added. Run under -race; before the cluster's node slice was guarded
// by a lock, this was a data race (RemoveNode/AddNode wrote c.nodes[u] while
// Views/TickRound/Counters/CheckInvariants iterated it).
func TestClusterChurnWhileSnapshotting(t *testing.T) {
	const n = 24
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: n, NewCore: sfFactory(12, 4), Loss: 0.05, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readers := []func(){
		func() { c.TickRound() },
		func() { c.Views() },
		func() { c.Counters() },
		func() {
			if err := c.CheckInvariants(); err != nil {
				t.Error(err)
			}
		},
		func() { c.Snapshot() },
		func() { c.Traffic() },
	}
	for _, fn := range readers {
		fn := fn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	// Churner: repeatedly remove and re-add nodes 0..7 while readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			u := peer.ID(i % 8)
			c.RemoveNode(u)
			if err := c.AddNode(u, []peer.ID{peer.ID(8 + i%4), peer.ID(12 + i%4), 16, 17}, false); err != nil {
				t.Errorf("re-add %v: %v", u, err)
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Counters().Ticks == 0 {
		t.Error("no ticks happened during the churn workout")
	}
}

// TestClusterRejoinSeedStreams pins the splitmix seed derivation: a
// rejoining node must not reuse any node's initial RNG stream (the old
// additive Seed+u+7919 scheme collided with the initial seed of node
// u+7918), so two successive incarnations behave differently.
func TestClusterRejoinSeedStreams(t *testing.T) {
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 10, NewCore: sfFactory(8, 2), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seeds := []peer.ID{0, 1, 2, 3}
	var ticks [2][]peer.ID
	for inc := 0; inc < 2; inc++ {
		c.RemoveNode(7)
		if err := c.AddNode(7, seeds, false); err != nil {
			t.Fatal(err)
		}
		// Drive the rejoined node alone and record its view trajectory:
		// distinct incarnations must draw distinct RNG streams.
		node := c.Nodes()[7]
		for i := 0; i < 12; i++ {
			node.Tick()
		}
		v := node.ViewSnapshot()
		ticks[inc] = v.IDs()
	}
	a, b := fmt.Sprint(ticks[0]), fmt.Sprint(ticks[1])
	if a == b {
		t.Errorf("two incarnations of node 7 produced identical view trajectories %s — seed streams collide", a)
	}
}

// TestClusterPartitionHeal drives the fault layer through the cluster: a
// two-way partition must cut cross-group gossip (counted, not silently
// dropped) and disconnect the overlay; healing must let S&F reconnect it.
func TestClusterPartitionHeal(t *testing.T) {
	const n = 30
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: n, NewCore: sfFactory(12, 4), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var a, b []peer.ID
	for u := 0; u < n; u++ {
		if u < n/2 {
			a = append(a, peer.ID(u))
		} else {
			b = append(b, peer.ID(u))
		}
	}
	for round := 0; round < 50; round++ {
		c.TickRound()
	}
	c.Conditions().Partition(a, b)
	for round := 0; round < 150; round++ {
		c.TickRound()
	}
	tr := c.Traffic()
	if tr.PartitionDrops == 0 {
		t.Error("no partition drops counted while partitioned")
	}
	if tr.PartitionDrops != tr.Losses {
		t.Errorf("losses %d != partition drops %d with lossless base", tr.Losses, tr.PartitionDrops)
	}
	g := c.Snapshot()
	if g.InducedComponents(a) > 1 || g.InducedComponents(b) > 1 {
		t.Error("a side of the partition fell apart internally")
	}
	dropsAtHeal := tr.PartitionDrops
	c.Conditions().Heal()
	for round := 0; round < 50; round++ {
		c.TickRound()
	}
	// Whether the overlay reconnects depends on how many cross-partition ids
	// survived the outage (S&F has no rejoin mechanism — the loss-stress
	// experiment measures that decay); what must hold is that the partition
	// stops dropping anything once healed.
	tr = c.Traffic()
	if tr.PartitionDrops != dropsAtHeal {
		t.Errorf("partition drops kept accruing after Heal: %d -> %d", dropsAtHeal, tr.PartitionDrops)
	}
	if tr.Sends != tr.Losses+tr.Deliveries+tr.DeadLetters {
		t.Errorf("traffic identity violated: %+v", tr)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterDelayedDelivery checks the delay queue path end to end in
// manual-tick mode: with a fixed 2-round delay, messages sit in the queue
// until TickRound advances the network clock past their due round.
func TestClusterDelayedDelivery(t *testing.T) {
	cond := faults.Lossless()
	if err := cond.SetDelay(faults.Delay{Fixed: 2}); err != nil {
		t.Fatal(err)
	}
	c, err := runtime.NewCluster(runtime.ClusterConfig{N: 10, NewCore: sfFactory(8, 2), Conditions: cond, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	c.TickRound()
	tr := c.Traffic()
	if tr.Deliveries != 0 || tr.Delayed != tr.Sends || tr.Sends == 0 {
		t.Fatalf("after one round, traffic = %+v: want all sends delayed, none delivered", tr)
	}
	if c.Network().Pending() != tr.Sends {
		t.Fatalf("pending %d != delayed sends %d", c.Network().Pending(), tr.Sends)
	}
	for round := 0; round < 60; round++ {
		c.TickRound()
	}
	for c.Network().Pending() > 0 {
		c.Network().Advance()
	}
	tr = c.Traffic()
	if tr.Sends != tr.Deliveries+tr.DeadLetters+tr.Losses {
		t.Errorf("traffic identity violated after drain: %+v", tr)
	}
	if tr.Deliveries == 0 {
		t.Error("no delayed deliveries happened")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSetPeriodLive(t *testing.T) {
	rec := &recorder{}
	// Start with a period far beyond the test horizon, then reload to a
	// fast one: ticks arriving at all proves the running loop picked the
	// change up.
	n, err := runtime.NewNode(runtime.NodeConfig{
		ID: 0, Core: sfCore(t, 8, 2), Period: time.Hour,
	}, []peer.ID{1, 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Period(); got != time.Hour {
		t.Errorf("Period = %v, want 1h", got)
	}
	if err := n.SetPeriod(0); err == nil {
		t.Error("accepted nonpositive period")
	}
	n.Start()
	defer n.Stop()
	if err := n.SetPeriod(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := n.Period(); got != time.Millisecond {
		t.Errorf("Period after reload = %v, want 1ms", got)
	}
	deadline := time.After(5 * time.Second)
	for n.Counters().Ticks == 0 {
		select {
		case <-deadline:
			t.Fatal("no tick after period reload")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// A second reload while a reset may still be pending must not block.
	for i := 0; i < 100; i++ {
		if err := n.SetPeriod(time.Duration(i+1) * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubstrateCountersAllEngines(t *testing.T) {
	for _, kind := range []runtime.EngineKind{runtime.EngineSeq, runtime.EngineCluster, runtime.EngineSharded} {
		sub, err := runtime.New(runtime.Config{
			Engine: kind,
			N:      16,
			NewCore: func() (protocol.StepCore, error) {
				return sendforget.NewCore(8, 2)
			},
			Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := 0; i < 10; i++ {
			sub.TickRound()
		}
		sub.DrainDelayed()
		c := sub.Counters()
		if c.Ticks == 0 || c.Sends == 0 {
			t.Errorf("%s: counters = %+v, want nonzero ticks and sends", kind, c)
		}
		if c.Ticks != c.Sends+c.SelfLoops {
			t.Errorf("%s: ticks %d != sends %d + selfloops %d", kind, c.Ticks, c.Sends, c.SelfLoops)
		}
		// S&F is fire-and-forget: the node ledger's send count is the
		// transport ledger's, and every receive is a delivery.
		tr := sub.Traffic()
		if c.Sends != tr.Sends {
			t.Errorf("%s: node sends %d != traffic sends %d", kind, c.Sends, tr.Sends)
		}
		if c.Receives != tr.Deliveries {
			t.Errorf("%s: node receives %d != deliveries %d", kind, c.Receives, tr.Deliveries)
		}
		sub.Close()
	}
}
