package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/transport"
)

// recorder is a Sender capturing messages.
type recorder struct {
	mu   sync.Mutex
	msgs []protocol.Message
	tos  []peer.ID
	err  error
}

func (r *recorder) Send(to peer.ID, msg protocol.Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, msg)
	r.tos = append(r.tos, to)
	return r.err
}

func TestNodeConfigValidation(t *testing.T) {
	rec := &recorder{}
	seeds := []peer.ID{1, 2}
	if _, err := NewNode(NodeConfig{ID: 0, S: 7, DL: 0}, seeds, rec); err == nil {
		t.Error("accepted odd s")
	}
	if _, err := NewNode(NodeConfig{ID: 0, S: 8, DL: 4}, seeds, rec); err == nil {
		t.Error("accepted dL > s-6")
	}
	if _, err := NewNode(NodeConfig{ID: 0, S: 8, DL: 0}, seeds, nil); err == nil {
		t.Error("accepted nil sender")
	}
	if _, err := NewNode(NodeConfig{ID: 0, S: 8, DL: 2}, []peer.ID{1}, rec); err == nil {
		t.Error("accepted too few seeds")
	}
	if _, err := NewNode(NodeConfig{ID: 0, S: 8, DL: 2}, seeds, rec); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestNodeTickSendsAndClears(t *testing.T) {
	rec := &recorder{}
	n, err := NewNode(NodeConfig{ID: 5, S: 6, DL: 0}, []peer.ID{1, 2, 3, 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && len(rec.msgs) == 0; i++ {
		n.Tick()
	}
	if len(rec.msgs) == 0 {
		t.Fatal("no message sent in 200 ticks")
	}
	msg := rec.msgs[0]
	if msg.From != 5 || msg.IDs[0] != 5 {
		t.Errorf("message = %+v, want From/first id = n5", msg)
	}
	if msg.Dup {
		t.Error("dup flagged with dL=0 and degree 4")
	}
	if got := n.ViewSnapshot().Outdegree(); got != 2 {
		t.Errorf("outdegree after send = %d, want 2", got)
	}
	c := n.Counters()
	if c.Sends != 1 || c.Ticks != c.Sends+c.SelfLoops {
		t.Errorf("counters = %+v", c)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNodeHandleMessage(t *testing.T) {
	rec := &recorder{}
	n, err := NewNode(NodeConfig{ID: 0, S: 6, DL: 0}, []peer.ID{1, 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 3, IDs: []peer.ID{3, 4}})
	v := n.ViewSnapshot()
	if !v.Contains(3) || !v.Contains(4) {
		t.Errorf("view %v missing delivered ids", v)
	}
	// Malformed messages are ignored.
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 3, IDs: []peer.ID{3}})
	n.HandleMessage(protocol.Message{Kind: protocol.KindRequest, From: 3, IDs: []peer.ID{3, 4}})
	if got := n.ViewSnapshot().Outdegree(); got != 4 {
		t.Errorf("outdegree after malformed messages = %d, want 4", got)
	}
	// Full view: deletion.
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 5, IDs: []peer.ID{5, 1}})
	n.HandleMessage(protocol.Message{Kind: protocol.KindGossip, From: 6, IDs: []peer.ID{6, 1}})
	if c := n.Counters(); c.Deletions != 1 {
		t.Errorf("Deletions = %d, want 1", c.Deletions)
	}
}

func TestNodeSendErrorCounted(t *testing.T) {
	rec := &recorder{err: fmt.Errorf("boom")}
	n, err := NewNode(NodeConfig{ID: 0, S: 6, DL: 0}, []peer.ID{1, 2, 3, 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && n.Counters().SendErrors == 0; i++ {
		n.Tick()
	}
	if n.Counters().SendErrors == 0 {
		t.Error("send errors not counted")
	}
}

func TestNodeStartStopIdempotent(t *testing.T) {
	rec := &recorder{}
	n, err := NewNode(NodeConfig{ID: 0, S: 6, DL: 0, Period: time.Millisecond}, []peer.ID{1, 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Start()
	time.Sleep(20 * time.Millisecond)
	n.Stop()
	n.Stop()
	if n.Counters().Ticks == 0 {
		t.Error("no ticks after Start")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 1, S: 8, DL: 0}); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := NewCluster(ClusterConfig{N: 4, S: 8, DL: 0, InitDegree: 4}); err == nil {
		t.Error("accepted init degree >= n")
	}
	if _, err := NewCluster(ClusterConfig{N: 10, S: 8, DL: 0, Loss: 1.5}); err == nil {
		t.Error("accepted loss > 1")
	}
}

func TestClusterTickRounds(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 40, S: 12, DL: 4, Loss: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Snapshot().WeaklyConnected() {
		t.Fatal("bootstrap topology disconnected")
	}
	for round := 0; round < 200; round++ {
		c.TickRound()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g := c.Snapshot()
	if !g.WeaklyConnected() {
		t.Errorf("cluster disconnected after 200 rounds: %d components", g.ComponentCount())
	}
	nc := c.Network().Counters()
	if nc.Sent == 0 || nc.Lost == 0 || nc.Delivered == 0 {
		t.Errorf("network counters = %+v", nc)
	}
	lossRate := float64(nc.Lost) / float64(nc.Sent)
	if lossRate < 0.02 || lossRate > 0.09 {
		t.Errorf("empirical loss rate %v, want ~0.05", lossRate)
	}
}

func TestClusterConcurrent(t *testing.T) {
	// Real goroutines + timers: run briefly, then verify invariants. This
	// is the race-detector workout for the lock discipline.
	c, err := NewCluster(ClusterConfig{N: 20, S: 12, DL: 4, Loss: 0.02, Period: time.Millisecond, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(150 * time.Millisecond)
	c.Stop()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ticks := 0
	for _, n := range c.Nodes() {
		ticks += n.Counters().Ticks
	}
	if ticks < 20 {
		t.Errorf("only %d ticks across the cluster", ticks)
	}
}

func TestClusterNodeDeparture(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 30, S: 12, DL: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 leaves: stops participating and drops off the network.
	c.Nodes()[3].Stop()
	c.Network().Register(3, nil)
	for round := 0; round < 400; round++ {
		for u, n := range c.Nodes() {
			if u != 3 {
				n.Tick()
			}
		}
	}
	g := c.Snapshot()
	// The departed id decays from the live views (Lemma 6.10). Its own
	// view still lists peers but nobody routes to it.
	live := 0
	for u := 0; u < 30; u++ {
		if u == 3 {
			continue
		}
		live += g.Multiplicity(peer.ID(u), 3)
	}
	_ = live
	instances := 0
	for u, v := range c.Views() {
		if u == 3 {
			continue
		}
		instances += v.Multiplicity(3)
	}
	if instances > 3 {
		t.Errorf("departed id still has %d instances after 400 rounds", instances)
	}
}

func TestNodesOverUDP(t *testing.T) {
	// End-to-end: 6 S&F nodes on localhost UDP, full mesh directory,
	// manual ticking (deterministic), real datagrams.
	const n = 6
	nodes := make([]*Node, n)
	eps := make([]*transport.Endpoint, n)
	for u := 0; u < n; u++ {
		u := u
		ep, err := transport.NewEndpoint("127.0.0.1:0", func(m protocol.Message) {
			nodes[u].HandleMessage(m)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[u] = ep
	}
	for u := 0; u < n; u++ {
		seeds := []peer.ID{peer.ID((u + 1) % n), peer.ID((u + 2) % n)}
		node, err := NewNode(NodeConfig{ID: peer.ID(u), S: 8, DL: 2}, seeds, eps[u])
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = node
		for v := 0; v < n; v++ {
			if v != u {
				if err := eps[u].AddPeer(peer.ID(v), eps[v].Addr().String()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for round := 0; round < 50; round++ {
		for _, node := range nodes {
			node.Tick()
		}
		time.Sleep(2 * time.Millisecond) // let datagrams land
	}
	time.Sleep(50 * time.Millisecond)
	received := 0
	for _, node := range nodes {
		if err := node.CheckInvariants(); err != nil {
			t.Error(err)
		}
		received += node.Counters().Receives
	}
	if received == 0 {
		t.Fatal("no UDP gossip was received")
	}
}

func TestClusterRemoveAddNode(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 30, S: 12, DL: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	c.RemoveNode(5)
	c.RemoveNode(5)  // idempotent
	c.RemoveNode(99) // out of range: no-op
	if c.Nodes()[5] != nil {
		t.Fatal("node 5 still present after RemoveNode")
	}
	for round := 0; round < 300; round++ {
		c.TickRound()
	}
	// The departed id decays from live views.
	instances := 0
	for u, v := range c.Views() {
		if u == 5 || v == nil {
			continue
		}
		instances += v.Multiplicity(5)
	}
	if instances > 2 {
		t.Errorf("departed id retains %d instances", instances)
	}
	// Rejoin with live seeds.
	if err := c.AddNode(5, []peer.ID{0, 1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(5, []peer.ID{0, 1}, false); err == nil {
		t.Error("double AddNode accepted")
	}
	if err := c.AddNode(99, []peer.ID{0, 1}, false); err == nil {
		t.Error("out-of-range AddNode accepted")
	}
	for round := 0; round < 100; round++ {
		c.TickRound()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The rejoined node reintegrates: others hold its id again.
	instances = 0
	for u, v := range c.Views() {
		if u == 5 || v == nil {
			continue
		}
		instances += v.Multiplicity(5)
	}
	if instances == 0 {
		t.Error("rejoined node acquired no in-neighbors")
	}
	g := c.Snapshot()
	if !g.WeaklyConnected() {
		t.Errorf("cluster disconnected after churn: %d components", g.ComponentCount())
	}
}

func TestClusterAddNodeStarted(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 10, S: 8, DL: 2, Period: time.Millisecond, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RemoveNode(3)
	if err := c.AddNode(3, []peer.ID{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	c.Stop()
	if c.Nodes()[3].Counters().Ticks == 0 {
		t.Error("restarted node never ticked")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
