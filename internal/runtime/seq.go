package runtime

import (
	"fmt"

	"sendforget/internal/driver"
	"sendforget/internal/engine"
	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// This file adapts the sequential discrete-event engine (internal/engine)
// to the Substrate interface. The engine itself schedules over a
// protocol.Protocol; coreProto builds that protocol generically from a
// CoreFactory — per-node step cores over per-node views with the circulant
// bootstrap — so the seq backend runs the exact same protocol code as the
// cluster backends, constructed the exact same way, with the engine's
// uniform-random-with-replacement scheduling on top.

// coreProto adapts per-node StepCores to protocol.Protocol + Churner.
// Single-threaded, like every protocol implementation: the engine
// serializes all calls.
type coreProto struct {
	name    string
	n       int
	factory protocol.CoreFactory
	cores   []protocol.StepCore
	views   []*view.View

	// counters tallies protocol events across all nodes, in the same
	// shape the concurrent backends report, so the seq substrate exports
	// the node-level ledger too. Single-threaded like the rest of the
	// adapter: the engine serializes all calls.
	counters NodeCounters
}

var (
	_ protocol.Protocol = (*coreProto)(nil)
	_ protocol.Churner  = (*coreProto)(nil)
)

// newCoreProto builds one core and one circulant-seeded view per node —
// the same bootstrap overlay NewCluster and NewSharded wire.
func newCoreProto(f protocol.CoreFactory, n, initDegree int) (*coreProto, error) {
	cp := &coreProto{
		n:       n,
		factory: f,
		cores:   make([]protocol.StepCore, n),
		views:   make([]*view.View, n),
	}
	seeds := make([]peer.ID, initDegree)
	for u := 0; u < n; u++ {
		core, err := f()
		if err != nil {
			return nil, fmt.Errorf("runtime: core for node %d: %w", u, err)
		}
		driver.Circulant(peer.ID(u), n, seeds)
		v, err := core.SeedView(seeds)
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d: %w", u, err)
		}
		cp.cores[u] = core
		cp.views[u] = v
	}
	cp.name = cp.cores[0].Name()
	return cp, nil
}

func (p *coreProto) Name() string { return p.name }
func (p *coreProto) N() int       { return p.n }

func (p *coreProto) View(u peer.ID) *view.View {
	if int(u) < 0 || int(u) >= p.n {
		return nil
	}
	return p.views[u]
}

func (p *coreProto) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	p.counters.Ticks++
	msgs, ok := p.cores[u].Initiate(p.views[u], u, r)
	if !ok || len(msgs) == 0 {
		p.counters.SelfLoops++
		return peer.Nil, protocol.Message{}, false
	}
	p.counters.Sends++
	if msgs[0].Msg.Dup {
		p.counters.Duplications++
	}
	return msgs[0].To, msgs[0].Msg, true
}

func (p *coreProto) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	p.counters.Receives++
	reply, ok := p.cores[u].Receive(p.views[u], u, msg, r)
	if !ok {
		return protocol.Message{}, peer.Nil, false
	}
	p.counters.Replies++
	return reply.Msg, reply.To, true
}

func (p *coreProto) Join(u peer.ID, seeds []peer.ID) error {
	if int(u) < 0 || int(u) >= p.n {
		return fmt.Errorf("runtime: node id %v outside cluster universe", u)
	}
	if p.views[u] != nil {
		return fmt.Errorf("runtime: node %v is already active", u)
	}
	core, err := p.factory()
	if err != nil {
		return fmt.Errorf("runtime: core for node %v: %w", u, err)
	}
	v, err := core.SeedView(seeds)
	if err != nil {
		return err
	}
	p.cores[u] = core
	p.views[u] = v
	return nil
}

func (p *coreProto) Leave(u peer.ID) {
	if int(u) < 0 || int(u) >= p.n {
		return
	}
	p.views[u] = nil
	p.cores[u] = nil
}

func (p *coreProto) Active(u peer.ID) bool {
	return int(u) >= 0 && int(u) < p.n && p.views[u] != nil
}

// seqSubstrate adapts the engine to the Substrate interface. The engine's
// Round is TickRound; churn maps to Join/Leave (the engine maintains the
// scheduling pool).
type seqSubstrate struct {
	eng *engine.Engine
	cp  *coreProto
}

// newSeq builds the sequential backend from the factory config, mirroring
// the cluster constructors' defaulting and validation.
func newSeq(cfg Config) (Substrate, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("runtime: seq engine needs at least 2 nodes, got %d", cfg.N)
	}
	if cfg.NewCore == nil {
		return nil, fmt.Errorf("runtime: seq engine needs a core factory")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.InitDegree == 0 {
		d, err := defaultInitDegree(cfg.NewCore, cfg.N)
		if err != nil {
			return nil, err
		}
		cfg.InitDegree = d
	}
	if cfg.InitDegree >= cfg.N || cfg.InitDegree < 1 {
		return nil, fmt.Errorf("runtime: init degree %d must be in [1, n-1] for n=%d", cfg.InitDegree, cfg.N)
	}
	cond := cfg.Conditions
	if cond == nil {
		lm, err := loss.NewUniform(cfg.Loss)
		if err != nil {
			return nil, err
		}
		if cond, err = faults.New(lm); err != nil {
			return nil, err
		}
	}
	cp, err := newCoreProto(cfg.NewCore, cfg.N, cfg.InitDegree)
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewWithConditions(cp, cond, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	return &seqSubstrate{eng: eng, cp: cp}, nil
}

func (s *seqSubstrate) TickRound()    { s.eng.Round() }
func (s *seqSubstrate) DrainDelayed() { s.eng.DrainDelayed() }
func (s *seqSubstrate) Pending() int  { return s.eng.PendingDelayed() }

func (s *seqSubstrate) Views() []*view.View    { return s.eng.Views() }
func (s *seqSubstrate) Snapshot() *graph.Graph { return s.eng.Snapshot() }
func (s *seqSubstrate) Traffic() metrics.Traffic {
	return s.eng.Traffic()
}

// Counters reports the protocol-event ledger in the shape the concurrent
// backends use (reply sends count under Replies, not Sends, matching
// Node.HandleMessage).
func (s *seqSubstrate) Counters() NodeCounters         { return s.cp.counters }
func (s *seqSubstrate) Conditions() *faults.Conditions { return s.eng.Conditions() }

func (s *seqSubstrate) CheckInvariants() error {
	for u := 0; u < s.cp.n; u++ {
		if s.cp.views[u] == nil {
			continue
		}
		if err := s.cp.cores[u].CheckView(s.cp.views[u]); err != nil {
			return fmt.Errorf("runtime: node %v: %w", peer.ID(u), err)
		}
	}
	return nil
}

// AddNode joins node u; the start flag is ignored (the seq engine is
// scheduler-driven, not timer-driven).
func (s *seqSubstrate) AddNode(u peer.ID, seeds []peer.ID, start bool) error {
	_ = start
	return s.eng.Join(u, seeds)
}

func (s *seqSubstrate) RemoveNode(u peer.ID) {
	// Leave errs only for non-Churner protocols; coreProto always churns.
	_ = s.eng.Leave(u)
}

// Close is a no-op: the seq engine holds no goroutines or timers.
func (s *seqSubstrate) Close() {}
