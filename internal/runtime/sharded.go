package runtime

import (
	"fmt"
	"math/bits"
	gort "runtime"
	"sync"
	"sync/atomic"

	"sendforget/internal/driver"
	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// This file is the sharded synchronous tick engine: the 10^5..10^6-node
// counterpart of Cluster. Cluster models the deployment shape — one
// goroutine, one mutex, one transport registration per node — which tops out
// around n=500 per tick because every round pays n lock acquisitions, n
// handler-map dispatches, and several allocations per message. The sharded
// engine keeps the exact same protocol code (the per-node StepCores) but
// reorganizes the execution for scale:
//
//   - Node state is flat: all views live in one contiguous id array (one
//     s-slot window per node, wrapped by view.Wrap), per-node RNGs are
//     values in a flat slice, and per-node event counters are replaced by
//     per-shard counter arrays summed at snapshot time.
//   - A tick is three phases. Initiate: nodes are partitioned into
//     contiguous shards and a bounded worker pool runs each shard's
//     initiate steps, appending messages to the shard's outbox (reused
//     flat buffers — zero steady-state allocations on the batch path).
//     Route: a single sequential pass walks the outboxes in shard order,
//     applies the fault stack per message (preserving one deterministic
//     RNG stream for loss/delay decisions, exactly like the chunk-merge
//     discipline of the markov CSR kernel), and buckets survivors into
//     per-destination-shard inboxes. Deliver: the pool runs each inbox's
//     receive steps; replies loop back through route until quiet.
//   - Results are bit-identical for any worker count: shard geometry
//     depends only on n (never on GOMAXPROCS), every shard is processed
//     in node order by exactly one worker, and all cross-shard merging
//     happens in the sequential route pass.
//
// Concurrency contract: all public methods are safe for concurrent use.
// They serialize through a capacity-1 token channel (gate) instead of a
// mutex, deliberately: the tick must dispatch to the worker pool (channel
// sends and receives) while the engine is exclusively held, and the repo's
// lock discipline — enforced by sfvet's lockdiscipline/lockreach analyzers —
// forbids blocking operations under a sync.Mutex because a handler running
// under a peer's lock can deadlock against it. That hazard cannot arise
// here: pool workers never acquire the gate (they are fed work and state
// exclusively by the gate holder), so the holder's channel operations with
// the pool cannot cycle back to the gate. The token channel makes that
// reasoning structural rather than suppressed.

// ShardedConfig parameterizes a sharded tick cluster.
type ShardedConfig struct {
	// N is the number of node slots.
	N int
	// NewCore builds one fresh protocol step core per node. Cores that
	// additionally implement protocol.BatchStepCore run allocation-free;
	// others fall back to the classic per-message-allocating step methods.
	NewCore protocol.CoreFactory
	// InitDegree is the circulant bootstrap outdegree (0 selects an even
	// value of about half the core's view size, as in NewCluster).
	InitDegree int
	// Loss is the uniform message loss rate, ignored when Conditions is
	// set.
	Loss float64
	// Conditions, when non-nil, is the fault-injection stack consulted per
	// message in the route phase. The instance must be dedicated to this
	// cluster.
	Conditions *faults.Conditions
	// Workers bounds the worker pool (0 selects min(GOMAXPROCS, shards);
	// 1 runs every phase inline with no goroutines at all). The worker
	// count never influences results, only wall-clock time.
	Workers int
	// ShardSize overrides the nodes-per-shard geometry (0 selects an
	// automatic size that depends only on N, keeping results machine-
	// independent). Tests use small sizes to exercise multi-shard paths
	// at small n.
	ShardSize int
	// Seed drives the fault-decision stream and the per-node RNGs.
	Seed int64
}

// Tick phases executed by the worker pool.
const (
	phaseInitiate int32 = iota
	phaseDeliver
)

// msgRef locates one routed message: index idx in source shard src's
// current outbox. The route pass buckets references instead of copying
// message bodies, so delivery reads each id exactly once from the arena it
// was written to.
type msgRef struct {
	src, idx int32
}

// shardedNode packs one node's per-message state: the view header wrapping
// its window of the shared slot array, its deterministic RNG, the
// pre-asserted batch fast path (nil when the core lacks it), and liveness.
// Everything the deliver phase reads for a destination is in this record.
type shardedNode struct {
	view  view.View
	rng   rng.RNG
	batch protocol.BatchStepCore
	live  bool
}

// ShardedCluster is the sharded synchronous tick engine. Construct with
// NewSharded; call Close when done to release the worker pool.
type ShardedCluster struct {
	cfg        ShardedConfig
	n, s       int
	shardSize  int
	shardShift uint // log2(shardSize) when shardSize is a power of two
	shardPow2  bool
	shards     int
	workers    int
	cond       *faults.Conditions

	// gate is the engine's exclusivity token (capacity 1, token present
	// when idle): receive to acquire, send to release. See the package
	// comment above for why this is a channel, not a mutex.
	gate chan struct{}

	// Pool plumbing. work carries the phase id to parked workers; done
	// collects one token per wake; quit (closed by Close) shuts the pool
	// down.
	work      chan int32
	done      chan struct{}
	quit      chan struct{}
	closeOnce sync.Once
	nextShard atomic.Int32

	// Flat node state, indexed by node id. The per-message hot fields live
	// together in nodes so a random-destination receive touches one record
	// (one or two cache lines) instead of four parallel arrays; the slot
	// windows (slots is the n*s id array, node u's view is window u) and
	// the cold per-node state stay in their own arrays. Both are confined:
	// between barrier phases only the worker that owns a node's shard may
	// touch its records, and outside phases only the gate holder.
	slots  []peer.ID     //vet:confined shard
	nodes  []shardedNode //vet:confined shard
	cores  []protocol.StepCore
	roster *driver.Roster // per-node incarnations and seed derivation

	// Per-shard buffers and counters, indexed by shard: outboxes is the
	// initiate phase output (source-sharded), counters is summed at
	// snapshot time.
	outboxes []protocol.Outbox //vet:confined shard
	counters []NodeCounters    //vet:confined shard

	// Routing state. The route pass does not copy surviving messages into
	// per-destination buffers; it buckets (source shard, message index)
	// references and the deliver phase reads ids straight out of the source
	// arenas (deliverSrc). Reply generations alternate between the two
	// replySets so a deliver phase never writes the arena it is reading.
	inboxRefs  [][]msgRef //vet:confined shard
	deliverSrc []protocol.Outbox
	replyOut   []protocol.Outbox
	replySets  [2][]protocol.Outbox

	// router is the shared transmission discipline (fault decisions,
	// delay queue, traffic ledger), drawing from one deterministic stream
	// consumed in merged shard order. Accessed only by the gate holder.
	router *driver.Router //vet:confined gate

	// scratch is the sequential outbox used when delivering drained
	// delayed messages and their reply chains outside the phased path.
	scratch protocol.Outbox
}

// NewSharded builds a sharded tick cluster with the circulant bootstrap
// topology (the same initial overlay NewCluster wires).
func NewSharded(cfg ShardedConfig) (*ShardedCluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("runtime: sharded cluster needs at least 2 nodes, got %d", cfg.N)
	}
	if cfg.NewCore == nil {
		return nil, fmt.Errorf("runtime: sharded cluster needs a core factory")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.InitDegree == 0 {
		d, err := defaultInitDegree(cfg.NewCore, cfg.N)
		if err != nil {
			return nil, err
		}
		cfg.InitDegree = d
	}
	if cfg.InitDegree >= cfg.N || cfg.InitDegree < 1 {
		return nil, fmt.Errorf("runtime: init degree %d must be in [1, n-1] for n=%d", cfg.InitDegree, cfg.N)
	}
	cond := cfg.Conditions
	if cond == nil {
		lm, err := loss.NewUniform(cfg.Loss)
		if err != nil {
			return nil, err
		}
		if cond, err = faults.New(lm); err != nil {
			return nil, err
		}
	}
	probe, err := cfg.NewCore()
	if err != nil {
		return nil, fmt.Errorf("runtime: core factory: %w", err)
	}
	s := probe.ViewSize()
	if s < 1 {
		return nil, fmt.Errorf("runtime: core view size %d", s)
	}

	shardSize := cfg.ShardSize
	if shardSize == 0 {
		shardSize = defaultShardSize(cfg.N)
	}
	if shardSize < 1 {
		return nil, fmt.Errorf("runtime: shard size %d", shardSize)
	}
	shards := (cfg.N + shardSize - 1) / shardSize
	workers := cfg.Workers
	if workers <= 0 {
		workers = gort.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}

	e := &ShardedCluster{
		cfg:       cfg,
		n:         cfg.N,
		s:         s,
		shardSize: shardSize,
		shards:    shards,
		workers:   workers,
		cond:      cond,
		gate:      make(chan struct{}, 1),
		work:      make(chan int32),
		done:      make(chan struct{}),
		quit:      make(chan struct{}),

		slots:  make([]peer.ID, cfg.N*s),
		nodes:  make([]shardedNode, cfg.N),
		cores:  make([]protocol.StepCore, cfg.N),
		roster: driver.NewRoster(cfg.Seed, cfg.N),

		outboxes:  make([]protocol.Outbox, shards),
		inboxRefs: make([][]msgRef, shards),
		counters:  make([]NodeCounters, shards),
	}
	e.router = driver.NewRouter(cond, rng.New(cfg.Seed), func(id peer.ID) bool {
		// The router invokes this only from its Route/Deliverable entry
		// points, which the engine reaches exclusively while holding the
		// gate (TickRound, drainDue) — a contract the confinement engine
		// cannot see through the stored callback.
		//lint:allow shardconfine router calls the liveness callback with the gate held (route pass and drain both run under the token)
		return e.nodes[id].live
	})
	if shardSize&(shardSize-1) == 0 {
		// Power-of-two shard size (the default geometry): the route pass
		// maps destination ids to shards with a shift instead of a divide.
		e.shardPow2 = true
		e.shardShift = uint(bits.TrailingZeros(uint(shardSize)))
	}
	e.replySets[0] = make([]protocol.Outbox, shards)
	e.replySets[1] = make([]protocol.Outbox, shards)

	seeds := make([]peer.ID, cfg.InitDegree)
	for u := 0; u < cfg.N; u++ {
		driver.Circulant(peer.ID(u), cfg.N, seeds)
		if err := e.activate(peer.ID(u), seeds); err != nil {
			return nil, fmt.Errorf("runtime: node %d: %w", u, err)
		}
	}

	for w := 1; w < e.workers; w++ {
		go e.worker()
	}
	e.gate <- struct{}{} // the engine starts idle
	return e, nil
}

// defaultShardSize picks the nodes-per-shard geometry from n alone: 256
// preferred (enough shards for work stealing at n >= 10^4), grown so that at
// most 1024 shards — and hence buffer sets — exist at n = 10^6. Results
// depend on the geometry, so it must never consult GOMAXPROCS.
func defaultShardSize(n int) int {
	const preferred, maxShards = 256, 1024
	size := preferred
	if min := (n + maxShards - 1) / maxShards; size < min {
		// Grow to the next power of two so the shard-of-destination map in
		// the route pass stays a shift at every n.
		size = 1 << uint(bits.Len(uint(min-1)))
	}
	return size
}

// activate installs a fresh core, view, and RNG stream for node u. Callers
// hold the gate (or, in NewSharded, are the only reference holder).
func (e *ShardedCluster) activate(u peer.ID, seeds []peer.ID) error {
	core, err := e.cfg.NewCore()
	if err != nil {
		return fmt.Errorf("runtime: core for node %v: %w", u, err)
	}
	if core.ViewSize() != e.s {
		return fmt.Errorf("runtime: core for node %v has view size %d, cluster expects %d", u, core.ViewSize(), e.s)
	}
	sv, err := core.SeedView(seeds)
	if err != nil {
		return err
	}
	window := e.slots[int(u)*e.s : (int(u)+1)*e.s]
	for i := 0; i < e.s; i++ {
		window[i] = sv.Slot(i)
	}
	nd := &e.nodes[u]
	nd.view = view.Wrap(window)
	e.cores[u] = core
	nd.batch, _ = core.(protocol.BatchStepCore)
	nd.rng = rng.NewState(e.roster.SeedFor(u))
	nd.live = true
	return nil
}

// worker is one parked pool worker: each wake token carries a phase id; the
// worker steals shards until the phase is exhausted, then reports done.
func (e *ShardedCluster) worker() {
	for {
		select {
		case <-e.quit:
			return
		case p := <-e.work:
			e.runShards(p)
			e.done <- struct{}{}
		}
	}
}

// runShards processes shards of phase p until none remain, stealing shard
// indices from the shared counter. Any worker may run any shard; each shard
// runs exactly once per phase, in node order, on one worker — which is why
// results cannot depend on the worker count.
func (e *ShardedCluster) runShards(p int32) {
	for {
		k := int(e.nextShard.Add(1)) - 1
		if k >= e.shards {
			return
		}
		switch p {
		case phaseInitiate:
			e.initiateShard(k)
		case phaseDeliver:
			e.deliverShard(k)
		}
	}
}

// runPhase executes one phase across all shards: wake the pool, participate,
// and join. Called with the gate held; the pool never touches the gate, so
// these channel operations cannot deadlock against it.
func (e *ShardedCluster) runPhase(p int32) {
	e.nextShard.Store(0)
	if e.workers <= 1 {
		e.runShards(p)
		return
	}
	for w := 1; w < e.workers; w++ {
		e.work <- p
	}
	e.runShards(p)
	for w := 1; w < e.workers; w++ {
		<-e.done
	}
}

// shardRange returns shard k's node id range [lo, hi).
func (e *ShardedCluster) shardRange(k int) (lo, hi int) {
	lo = k * e.shardSize
	hi = lo + e.shardSize
	if hi > e.n {
		hi = e.n
	}
	return lo, hi
}

// initiateShard runs the initiate step of every live node in shard k,
// appending outgoing messages to the shard outbox and accumulating the
// shard's counters locally (one write to the shared array per shard per
// phase — no per-node locks, no false sharing in the loop).
func (e *ShardedCluster) initiateShard(k int) {
	lo, hi := e.shardRange(k)
	ob := &e.outboxes[k]
	ob.Reset() // the previous round's messages were consumed by deliver
	var cnt NodeCounters
	for u := lo; u < hi; u++ {
		nd := &e.nodes[u]
		if !nd.live {
			continue
		}
		cnt.Ticks++
		if bc := nd.batch; bc != nil {
			msgs, dups, ok := bc.InitiateBatch(&nd.view, peer.ID(u), &nd.rng, ob)
			if !ok {
				cnt.SelfLoops++
				continue
			}
			cnt.Sends += msgs
			cnt.Duplications += dups
		} else {
			//lint:allow hotalloc classic StepCore fallback allocates by contract; cores with a batch path never take it
			msgs, ok := e.cores[u].Initiate(&nd.view, peer.ID(u), &nd.rng)
			if !ok {
				cnt.SelfLoops++
				continue
			}
			for _, m := range msgs {
				ob.Append(m.To, m.Msg.From, m.Msg.Kind, m.Msg.Dup, m.Msg.IDs...)
				cnt.Sends++
				if m.Msg.Dup {
					cnt.Duplications++
				}
			}
		}
	}
	e.counters[k].accumulate(cnt)
}

// deliverShard runs the receive step for every message bucketed to shard k,
// in bucket order (which the sequential route pass made deterministic),
// reading message bodies straight out of the source shard arenas. Replies go
// to the shard's reply outbox and face the fault stack in the next route
// pass.
func (e *ShardedCluster) deliverShard(k int) {
	refs := e.inboxRefs[k]
	src := e.deliverSrc
	rb := &e.replyOut[k]
	var cnt NodeCounters
	for _, ref := range refs {
		ob := &src[ref.src]
		m := &ob.Msgs[ref.idx]
		u := m.To
		// u is the message destination, not a value derived from this
		// worker's shard steal — but the route pass bucketed every ref in
		// inboxRefs[k] by destination shard, so u's record belongs to
		// shard k by construction.
		//lint:allow shardconfine route pass buckets refs by destination shard; every m.To in inboxRefs[k] maps to shard k
		nd := &e.nodes[u]
		cnt.Receives++
		ids := ob.MsgIDs(m)
		if bc := nd.batch; bc != nil {
			if bc.ReceiveBatch(&nd.view, u, protocol.Packet{Kind: m.Kind, From: m.From, IDs: ids, Dup: m.Dup}, &nd.rng, rb) {
				cnt.Replies++
			}
		} else {
			msg := protocol.Message{Kind: m.Kind, From: m.From, IDs: ids, Dup: m.Dup}
			//lint:allow hotalloc classic StepCore fallback allocates by contract; cores with a batch path never take it
			if reply, ok := e.cores[u].Receive(&nd.view, u, msg, &nd.rng); ok {
				cnt.Replies++
				rb.Append(reply.To, reply.Msg.From, reply.Msg.Kind, reply.Msg.Dup, reply.Msg.IDs...)
			}
		}
	}
	e.inboxRefs[k] = refs[:0]
	e.counters[k].accumulate(cnt)
}

// accumulate adds other into c.
func (c *NodeCounters) accumulate(other NodeCounters) {
	c.Ticks += other.Ticks
	c.SelfLoops += other.SelfLoops
	c.Sends += other.Sends
	c.Duplications += other.Duplications
	c.Receives += other.Receives
	c.Replies += other.Replies
	c.SendErrors += other.SendErrors
}

// route is the sequential merge pass: it walks boxes in shard order and
// rules on every message with the fault stack, drawing from the single
// fault-decision stream in that fixed order (the same discipline that makes
// the markov CSR kernel bit-reproducible: parallel phases produce per-chunk
// buffers, one deterministic order consumes them). Survivors are bucketed
// by reference into the destination shard's inbox (the boxes stay alive for
// the deliver phase to read); delayed messages park in the heap with their
// ids copied out of the transient arena. It returns whether any message was
// bucketed for delivery.
func (e *ShardedCluster) route(boxes []protocol.Outbox) bool {
	delivered := false
	e.deliverSrc = boxes
	// One condition-stack session for the whole pass: the stack is locked
	// once here instead of once per message (route is sequential, so the
	// single-owner contract holds trivially). The router rules per message
	// — drop, park (copying the ids out of the transient arena), dead
	// letter, or deliver — and the bucketing of survivors stays here.
	ses := e.cond.Begin()
	for k := range boxes {
		ob := &boxes[k]
		for i := range ob.Msgs {
			m := &ob.Msgs[i]
			msg := protocol.Message{Kind: m.Kind, From: m.From, IDs: ob.MsgIDs(m), Dup: m.Dup}
			if e.router.RouteIn(&ses, m.To, msg) != driver.Delivered {
				continue
			}
			dest := int(m.To) / e.shardSize
			if e.shardPow2 {
				dest = int(m.To) >> e.shardShift
			}
			e.inboxRefs[dest] = append(e.inboxRefs[dest], msgRef{src: int32(k), idx: int32(i)})
			delivered = true
		}
	}
	ses.Close()
	return delivered
}

// drainDue delivers every delayed message due by the current tick, in
// (due, enqueue) order — sequentially, off the phased path (drains are rare
// and small; determinism matters more than parallelism here). Routing is
// resolved at drain time, so a message to a node that departed while in
// flight is a dead letter, exactly as on the other substrates.
func (e *ShardedCluster) drainDue() {
	for {
		d, ok := e.router.Due()
		if !ok {
			return
		}
		if !e.router.Deliverable(d.To) {
			continue
		}
		e.deliverNow(d.To, protocol.Packet{Kind: d.Msg.Kind, From: d.Msg.From, IDs: d.Msg.IDs, Dup: d.Msg.Dup})
	}
}

// deliverNow delivers one message immediately, following its reply chain
// through the fault stack (replies may be dropped, delayed, or delivered in
// turn). The first hop is already accounted by the caller's Deliverable
// check; replies re-enter the router like any send. Used for drained
// delayed messages only; phased delivery handles the per-tick bulk.
func (e *ShardedCluster) deliverNow(to peer.ID, pkt protocol.Packet) {
	for {
		nd := &e.nodes[to]
		k := int(to) / e.shardSize
		e.scratch.Reset()
		cnt := &e.counters[k]
		cnt.Receives++
		if bc := nd.batch; bc != nil {
			if bc.ReceiveBatch(&nd.view, to, pkt, &nd.rng, &e.scratch) {
				cnt.Replies++
			}
		} else {
			//lint:allow hotalloc classic StepCore fallback allocates by contract; cores with a batch path never take it
			if reply, ok := e.cores[to].Receive(&nd.view, to, pkt.Message(), &nd.rng); ok {
				cnt.Replies++
				e.scratch.Append(reply.To, reply.Msg.From, reply.Msg.Kind, reply.Msg.Dup, reply.Msg.IDs...)
			}
		}
		if len(e.scratch.Msgs) == 0 {
			return
		}
		// Current protocols reply with at most one message; route it and
		// continue the chain.
		m := &e.scratch.Msgs[0]
		msg := protocol.Message{Kind: m.Kind, From: m.From, IDs: e.scratch.MsgIDs(m), Dup: m.Dup}
		if e.router.Route(m.To, msg) != driver.Delivered {
			return
		}
		to = m.To
		pkt = protocol.Packet{Kind: m.Kind, From: m.From, IDs: e.scratch.MsgIDs(m), Dup: m.Dup}
	}
}

// TickRound drives one synchronous round: the delay queue delivers what came
// due, every live node initiates once (initiate phase), the fault stack
// rules on the round's messages in shard order (route), and survivors'
// receive steps run (deliver phase), with reply generations looping through
// route until the round is quiet.
//
//vet:hotpath
func (e *ShardedCluster) TickRound() {
	<-e.gate
	e.router.Tick()
	e.drainDue()
	e.runPhase(phaseInitiate)
	cur := e.outboxes
	w := 0
	for e.route(cur) {
		// Replies of this deliver generation go to the reply set the route
		// pass is NOT reading from: route bucketed references into cur, so
		// the deliver phase reads ids straight out of cur's arenas while
		// appending replies to rs. The two sets alternate across
		// generations. Reply chains terminate for every current protocol
		// (replies never generate further replies), so this loop runs at
		// most twice.
		rs := e.replySets[w]
		for k := range rs {
			rs[k].Reset()
		}
		e.replyOut = rs
		e.runPhase(phaseDeliver)
		cur = rs
		w ^= 1
	}
	e.gate <- struct{}{}
}

// DrainDelayed advances the tick clock without initiating any actions until
// the delay queue is empty, delivering everything in flight — the sharded
// counterpart of Engine.DrainDelayed, run at the end of a comparison so the
// traffic identity (metrics.Traffic.Conserved) holds exactly.
func (e *ShardedCluster) DrainDelayed() {
	<-e.gate
	for e.router.Pending() > 0 {
		e.router.Tick()
		e.drainDue()
	}
	e.gate <- struct{}{}
}

// Pending returns the number of messages parked in the delay queue.
func (e *ShardedCluster) Pending() int {
	<-e.gate
	n := e.router.Pending()
	e.gate <- struct{}{}
	return n
}

// Views snapshots all node views (nil entries for departed nodes) in one
// bulk pass: the engine is held once for the whole copy instead of locking
// every node individually, which is what keeps snapshot cost sane at 10^5+
// nodes.
func (e *ShardedCluster) Views() []*view.View {
	<-e.gate
	out := make([]*view.View, e.n)
	for u := range out {
		if e.nodes[u].live {
			out[u] = e.nodes[u].view.Clone()
		}
	}
	e.gate <- struct{}{}
	return out
}

// Snapshot returns the current membership graph.
func (e *ShardedCluster) Snapshot() *graph.Graph {
	return graph.FromViews(e.Views())
}

// Counters sums the per-shard counters — O(shards), not O(n) per-node lock
// acquisitions.
func (e *ShardedCluster) Counters() NodeCounters {
	<-e.gate
	var sum NodeCounters
	for k := range e.counters {
		sum.accumulate(e.counters[k])
	}
	e.gate <- struct{}{}
	return sum
}

// Traffic reports the transport counters in the substrate-neutral shape
// shared with Engine and Cluster (see metrics.Traffic for the unified
// counting semantics).
func (e *ShardedCluster) Traffic() metrics.Traffic {
	<-e.gate
	t := e.router.Traffic()
	e.gate <- struct{}{}
	return t
}

// Conditions returns the fault-injection stack for mid-run reconfiguration
// (partitions, link overrides).
func (e *ShardedCluster) Conditions() *faults.Conditions { return e.cond }

// CheckInvariants validates the protocol's per-view invariant on every live
// node, in one bulk pass.
func (e *ShardedCluster) CheckInvariants() error {
	<-e.gate
	defer func() { e.gate <- struct{}{} }()
	for u := 0; u < e.n; u++ {
		if !e.nodes[u].live {
			continue
		}
		if err := e.cores[u].CheckView(&e.nodes[u].view); err != nil {
			return fmt.Errorf("runtime: node %v: %w", peer.ID(u), err)
		}
	}
	return nil
}

// RemoveNode makes node u leave the cluster, the paper's leave semantics:
// no protocol action, its id decays from other views, and in-flight
// messages to it become dead letters. Idempotent, safe during concurrent
// ticking.
func (e *ShardedCluster) RemoveNode(u peer.ID) {
	if int(u) < 0 || int(u) >= e.n {
		return
	}
	<-e.gate
	e.nodes[u].live = false
	e.gate <- struct{}{}
}

// AddNode (re)activates node u with the given seed ids (at least max(2, dL)
// per the paper's join rule). Each activation draws a fresh RNG stream
// derived from (cluster seed, id, incarnation), exactly like
// Cluster.AddNode. The start flag exists for Cluster API compatibility and
// is ignored: the sharded engine is tick-driven, so a (re)joined node simply
// participates in subsequent TickRounds.
func (e *ShardedCluster) AddNode(u peer.ID, seeds []peer.ID, start bool) error {
	_ = start
	if int(u) < 0 || int(u) >= e.n {
		return fmt.Errorf("runtime: node id %v outside cluster universe", u)
	}
	<-e.gate
	defer func() { e.gate <- struct{}{} }()
	if e.nodes[u].live {
		return fmt.Errorf("runtime: node %v is already active", u)
	}
	e.roster.Bump(u)
	return e.activate(u, seeds)
}

// Close shuts the worker pool down. The engine must not be used after
// Close; Close is idempotent and safe to call while the engine is idle.
func (e *ShardedCluster) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
}
