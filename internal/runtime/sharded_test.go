package runtime_test

import (
	"fmt"
	gort "runtime"
	"sync"
	"testing"

	"sendforget/internal/faults"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/runtime"
)

// batchProtocols lists all five protocols with batch step cores, the full
// set the sharded engine runs allocation-free. The factories mirror
// cmd/sfsim's defaults at view size 16.
func batchProtocols() []struct {
	name    string
	factory protocol.CoreFactory
} {
	return []struct {
		name    string
		factory protocol.CoreFactory
	}{
		{"sf", func() (protocol.StepCore, error) { return sendforget.NewCore(16, 6) }},
		{"sfopt", func() (protocol.StepCore, error) {
			return sfopt.NewCore(sfopt.Options{S: 16, DL: 6, ReplaceWhenFull: true, Undelete: true})
		}},
		{"shuffle", func() (protocol.StepCore, error) { return shuffle.NewCore(16) }},
		{"flipper", func() (protocol.StepCore, error) { return flipper.NewCore(16) }},
		{"pushpull", func() (protocol.StepCore, error) { return pushpull.NewCore(16) }},
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := runtime.NewSharded(runtime.ShardedConfig{N: 1, NewCore: sfFactory(8, 2)}); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := runtime.NewSharded(runtime.ShardedConfig{N: 10}); err == nil {
		t.Error("accepted nil core factory")
	}
	if _, err := runtime.NewSharded(runtime.ShardedConfig{N: 10, NewCore: sfFactory(8, 2), InitDegree: 10}); err == nil {
		t.Error("accepted init degree >= n")
	}
}

func TestShardedTickRounds(t *testing.T) {
	e, err := runtime.NewSharded(runtime.ShardedConfig{N: 60, NewCore: sfFactory(12, 4), Loss: 0.05, Seed: 7, ShardSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for round := 0; round < 80; round++ {
		e.TickRound()
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cnt := e.Counters()
	if cnt.Ticks != 60*80 {
		t.Errorf("ticks = %d, want %d", cnt.Ticks, 60*80)
	}
	if cnt.Sends == 0 || cnt.Receives == 0 {
		t.Errorf("no gossip flowed: %+v", cnt)
	}
	tr := e.Traffic()
	if !tr.Conserved() {
		t.Errorf("traffic identity violated: %+v", tr)
	}
	if tr.Losses == 0 {
		t.Error("5% loss produced no losses")
	}
	if cnt.Sends != tr.Sends {
		t.Errorf("node sends %d != transport sends %d", cnt.Sends, tr.Sends)
	}
	if cnt.Receives != tr.Deliveries {
		t.Errorf("node receives %d != transport deliveries %d", cnt.Receives, tr.Deliveries)
	}
	g := e.Snapshot()
	if comps := g.ComponentCount(); comps > 1 {
		t.Errorf("overlay split into %d components under mild loss", comps)
	}
}

// shardedFingerprint condenses an engine's full observable state — every
// view byte, the summed counters, and the traffic ledger — into one string
// for exact cross-run comparison.
func shardedFingerprint(e *runtime.ShardedCluster) string {
	views := e.Views()
	buf := make([]byte, 0, 1<<16)
	for u, v := range views {
		if v == nil {
			buf = append(buf, fmt.Sprintf("%d:-\n", u)...)
			continue
		}
		buf = append(buf, fmt.Sprintf("%d:", u)...)
		for i := 0; i < v.Size(); i++ {
			buf = append(buf, fmt.Sprintf("%d,", v.Slot(i))...)
		}
		buf = append(buf, '\n')
	}
	return string(buf) + fmt.Sprintf("%+v\n%+v", e.Counters(), e.Traffic())
}

// TestShardedDeterministicAcrossWorkers is the engine's core guarantee: the
// worker count changes wall-clock time only, never results. Every view
// byte, counter, and traffic number must match across worker counts — for
// all five batch protocols, with and without a delay queue in play.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	gmp := gort.GOMAXPROCS(0)
	cases := []struct {
		name  string
		delay faults.Delay
	}{
		{name: "immediate"},
		{name: "delayed", delay: faults.Delay{Fixed: 1, Jitter: 3}},
	}
	for _, p := range batchProtocols() {
		for _, tc := range cases {
			t.Run(p.name+"/"+tc.name, func(t *testing.T) {
				var want string
				for _, workers := range []int{1, 4, gmp} {
					cond := faults.Lossless()
					if tc.delay.Fixed > 0 || tc.delay.Jitter > 0 {
						if err := cond.SetDelay(tc.delay); err != nil {
							t.Fatal(err)
						}
					} else {
						cond = nil
					}
					e, err := runtime.NewSharded(runtime.ShardedConfig{
						N: 200, NewCore: p.factory, Loss: 0.05,
						Conditions: cond, Seed: 17, ShardSize: 16, Workers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					for round := 0; round < 60; round++ {
						e.TickRound()
					}
					e.DrainDelayed()
					got := shardedFingerprint(e)
					e.Close()
					if want == "" {
						want = got
					} else if got != want {
						t.Errorf("workers=%d produced different results than workers=1", workers)
					}
				}
			})
		}
	}
}

// TestShardedDelayedDelivery mirrors TestClusterDelayedDelivery on the
// sharded engine: with a fixed 2-round delay every first-round send parks in
// the delay queue, and the traffic identity holds once DrainDelayed empties
// it.
func TestShardedDelayedDelivery(t *testing.T) {
	cond := faults.Lossless()
	if err := cond.SetDelay(faults.Delay{Fixed: 2}); err != nil {
		t.Fatal(err)
	}
	e, err := runtime.NewSharded(runtime.ShardedConfig{N: 10, NewCore: sfFactory(8, 2), Conditions: cond, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.TickRound()
	tr := e.Traffic()
	if tr.Deliveries != 0 || tr.Delayed != tr.Sends || tr.Sends == 0 {
		t.Fatalf("after one round, traffic = %+v: want all sends delayed, none delivered", tr)
	}
	if e.Pending() != tr.Sends {
		t.Fatalf("pending %d != delayed sends %d", e.Pending(), tr.Sends)
	}
	for round := 0; round < 60; round++ {
		e.TickRound()
	}
	e.DrainDelayed()
	if e.Pending() != 0 {
		t.Fatalf("pending %d after DrainDelayed", e.Pending())
	}
	tr = e.Traffic()
	if !tr.Conserved() {
		t.Errorf("traffic identity violated after drain: %+v", tr)
	}
	if tr.Deliveries == 0 {
		t.Error("no delayed deliveries happened")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedRemoveAddNode(t *testing.T) {
	e, err := runtime.NewSharded(runtime.ShardedConfig{N: 30, NewCore: sfFactory(12, 4), Seed: 5, ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for round := 0; round < 20; round++ {
		e.TickRound()
	}
	e.RemoveNode(7)
	e.RemoveNode(7) // idempotent
	if v := e.Views()[7]; v != nil {
		t.Error("removed node still has a view")
	}
	// Gossip while 7 is down: messages addressed to it dead-letter.
	for round := 0; round < 20; round++ {
		e.TickRound()
	}
	if err := e.AddNode(7, []peer.ID{0, 1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := e.AddNode(7, []peer.ID{0, 1, 2, 3}, false); err == nil {
		t.Error("double-add accepted")
	}
	if err := e.AddNode(99, []peer.ID{0, 1}, false); err == nil {
		t.Error("out-of-universe add accepted")
	}
	for round := 0; round < 40; round++ {
		e.TickRound()
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr := e.Traffic()
	if !tr.Conserved() {
		t.Errorf("traffic identity violated: %+v", tr)
	}
	if tr.DeadLetters == 0 {
		t.Error("no dead letters while node 7 was down — in-flight gossip to it should have dead-lettered")
	}
}

// TestShardedRejoinSeedStreams mirrors TestClusterRejoinSeedStreams:
// distinct incarnations of the same node must draw distinct RNG streams
// (seedFor derives from (seed, id, incarnation)).
func TestShardedRejoinSeedStreams(t *testing.T) {
	e, err := runtime.NewSharded(runtime.ShardedConfig{N: 10, NewCore: sfFactory(8, 2), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seeds := []peer.ID{0, 1, 2, 3}
	var trajectories [2]string
	for inc := 0; inc < 2; inc++ {
		e.RemoveNode(7)
		if err := e.AddNode(7, seeds, false); err != nil {
			t.Fatal(err)
		}
		var tr string
		for i := 0; i < 12; i++ {
			e.TickRound()
			tr += fmt.Sprint(e.Views()[7].IDs())
		}
		trajectories[inc] = tr
	}
	if trajectories[0] == trajectories[1] {
		t.Errorf("two incarnations of node 7 produced identical view trajectories — seed streams collide")
	}
}

// TestShardedChurnWhileTicking exercises the gate under concurrency: ticks,
// churn, and snapshots race from several goroutines (the race detector
// checks the serialization; the invariants check the protocol state).
func TestShardedChurnWhileTicking(t *testing.T) {
	e, err := runtime.NewSharded(runtime.ShardedConfig{N: 40, NewCore: sfFactory(12, 4), Loss: 0.02, Seed: 9, ShardSize: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			e.TickRound()
		}
	}()
	go func() {
		defer wg.Done()
		seeds := []peer.ID{0, 1, 2, 3}
		for i := 0; i < 20; i++ {
			u := peer.ID(10 + i%5)
			e.RemoveNode(u)
			if err := e.AddNode(u, seeds, false); err != nil {
				t.Errorf("rejoin %v: %v", u, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			_ = e.Views()
			_ = e.Counters()
			_ = e.Traffic()
			_ = e.Pending()
		}
	}()
	wg.Wait()
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !e.Traffic().Conserved() {
		// Churn dead-letters in-flight messages but never loses track of
		// them.
		t.Errorf("traffic identity violated: %+v", e.Traffic())
	}
}

// TestShardedZeroAllocTick is the memory-budget gate, parameterized over all
// five batch step cores: after warm-up, a steady-state tick round performs
// zero heap allocations (flat state, reused outboxes, fused view primitives).
// CI runs this test; a protocol whose batch core starts allocating per
// message fails its own subtest immediately.
func TestShardedZeroAllocTick(t *testing.T) {
	for _, p := range batchProtocols() {
		t.Run(p.name, func(t *testing.T) {
			e, err := runtime.NewSharded(runtime.ShardedConfig{N: 2000, NewCore: p.factory, Loss: 0.02, Seed: 10, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			// Warm up until the outbox arenas reach their steady-state
			// capacity.
			for round := 0; round < 50; round++ {
				e.TickRound()
			}
			avg := testing.AllocsPerRun(20, e.TickRound)
			if avg != 0 {
				t.Errorf("steady-state TickRound allocates %.1f times per round, want 0", avg)
			}
		})
	}
}

// TestShardedViewsAreCopies guards the bulk snapshot: mutating a returned
// view must not touch engine state.
func TestShardedViewsAreCopies(t *testing.T) {
	e, err := runtime.NewSharded(runtime.ShardedConfig{N: 10, NewCore: sfFactory(8, 2), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	v := e.Views()[3]
	var before []peer.ID
	for i := 0; i < v.Size(); i++ {
		before = append(before, v.Slot(i))
	}
	v.Set(0, peer.ID(9))
	v.Clear(1)
	again := e.Views()[3]
	for i, id := range before {
		if again.Slot(i) != id {
			t.Fatalf("slot %d changed from %v to %v after mutating a snapshot", i, id, again.Slot(i))
		}
	}
}

// TestShardedMatchesDefaultGeometry pins the shard geometry contract: the
// default geometry depends only on n, so results are identical whether the
// caller overrides ShardSize with the same value or leaves it 0.
func TestShardedMatchesDefaultGeometry(t *testing.T) {
	run := func(shardSize, workers int) string {
		e, err := runtime.NewSharded(runtime.ShardedConfig{
			N: 300, NewCore: sfFactory(8, 2), Loss: 0.1, Seed: 23,
			ShardSize: shardSize, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for round := 0; round < 30; round++ {
			e.TickRound()
		}
		return shardedFingerprint(e)
	}
	// n=300 < default shard size 256*2: explicit 256 must equal default.
	if run(256, 1) != run(0, 2) {
		t.Error("explicit ShardSize=256 differs from default geometry")
	}
}
