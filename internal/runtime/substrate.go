package runtime

import (
	"fmt"
	"time"

	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/view"
)

// Substrate is the single execution-backend interface: the sequential
// discrete-event engine, the goroutine-per-node cluster, and the sharded
// synchronous tick engine all satisfy it, so equivalence harnesses,
// benchmarks, and commands program against the interface and differ only in
// construction (runtime.New). All three backends drive the same per-node
// protocol.StepCores through the shared internal/driver transmission
// discipline; the substrate choice changes scheduling and scale, never
// protocol semantics (Proposition 5.2).
type Substrate interface {
	// TickRound drives one gossip round: the delay queue delivers what
	// came due, then every live node initiates once (the paper's round:
	// "the period of time during which each node is expected to initiate
	// exactly one action", Section 6.5).
	TickRound()
	// DrainDelayed advances the delay-queue clock without initiating any
	// actions until the queue is empty, so the traffic identity
	// metrics.Traffic.Conserved holds on the final counters.
	DrainDelayed()
	// Pending returns the number of messages parked in the delay queue.
	Pending() int
	// Views snapshots all node views (nil entries for departed nodes).
	// Callers must treat the views as read-only.
	Views() []*view.View
	// Snapshot returns the current membership graph.
	Snapshot() *graph.Graph
	// Traffic reports the transport ledger in the substrate-neutral shape
	// (see metrics.Traffic for the unified counting semantics).
	Traffic() metrics.Traffic
	// Counters sums the per-node protocol counters (ticks, sends,
	// receives, replies, duplications, self-loops) over all live nodes —
	// the node-level ledger the management API's /metrics endpoint
	// exports next to Traffic.
	Counters() NodeCounters
	// Conditions returns the fault-injection stack for mid-run
	// reconfiguration (partitions, link overrides).
	Conditions() *faults.Conditions
	// CheckInvariants validates the protocol's per-view invariant on every
	// live node.
	CheckInvariants() error
	// AddNode (re)activates node u with the given seed ids (at least
	// max(2, dL) per the paper's join rule). The start flag launches the
	// node's own gossip loop on timer-driven substrates and is ignored by
	// tick-driven ones.
	AddNode(u peer.ID, seeds []peer.ID, start bool) error
	// RemoveNode makes node u leave: no protocol action, its id decays
	// from other views, in-flight messages to it become dead letters.
	RemoveNode(u peer.ID)
	// Close releases the substrate's resources (worker pools, timers).
	// The substrate must not be used after Close; Close is idempotent.
	Close()
}

// The three concrete backends all satisfy Substrate.
var (
	_ Substrate = (*Cluster)(nil)
	_ Substrate = (*ShardedCluster)(nil)
	_ Substrate = (*seqSubstrate)(nil)
)

// EngineKind names an execution backend for Config.Engine and the -engine
// command-line flags.
type EngineKind string

const (
	// EngineSeq is the sequential discrete-event engine: uniform-random
	// scheduling with replacement, one goroutine, the paper's analysis
	// model (Section 5).
	EngineSeq EngineKind = "seq"
	// EngineCluster is the goroutine-per-node cluster over the in-memory
	// network: the deployment shape, practical to ~500 nodes per tick.
	EngineCluster EngineKind = "cluster"
	// EngineSharded is the sharded synchronous tick engine: flat state,
	// zero-alloc batch stepping, 10^5..10^6 nodes.
	EngineSharded EngineKind = "sharded"
)

// ParseEngine maps a command-line flag value to an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case EngineSeq, EngineCluster, EngineSharded:
		return EngineKind(s), nil
	}
	return "", fmt.Errorf("runtime: unknown engine %q (want seq, cluster, or sharded)", s)
}

// Config parameterizes New, the single constructor for every execution
// backend. The shared fields mirror ClusterConfig/ShardedConfig; fields
// that apply to only one backend are ignored by the others.
type Config struct {
	// Engine selects the backend (default EngineCluster).
	Engine EngineKind
	// N is the number of node slots.
	N int
	// NewCore builds one fresh protocol step core per node.
	NewCore protocol.CoreFactory
	// InitDegree is the circulant bootstrap outdegree (0 selects an even
	// value of about half the core's view size).
	InitDegree int
	// Loss is the uniform message loss rate, ignored when Conditions is
	// set.
	Loss float64
	// Conditions, when non-nil, is the fault-injection stack consulted per
	// message. The instance must be dedicated to this substrate.
	Conditions *faults.Conditions
	// Seed drives the fault-decision stream and the per-node RNGs.
	Seed int64
	// Period is the gossip period for timer-driven operation (cluster
	// only).
	Period time.Duration
	// Workers bounds the worker pool (sharded only; never influences
	// results).
	Workers int
	// ShardSize overrides the nodes-per-shard geometry (sharded only).
	ShardSize int
}

// New builds the configured execution backend. It is the only constructor
// packages outside internal/runtime may use (sfvet's substrate analyzer
// enforces this): equivalence harnesses, benchmarks, and commands stay free
// of backend-specific branches beyond this call.
func New(cfg Config) (Substrate, error) {
	switch cfg.Engine {
	case EngineSeq:
		return newSeq(cfg)
	case EngineCluster, "":
		return NewCluster(ClusterConfig{
			N:          cfg.N,
			NewCore:    cfg.NewCore,
			InitDegree: cfg.InitDegree,
			Loss:       cfg.Loss,
			Conditions: cfg.Conditions,
			Period:     cfg.Period,
			Seed:       cfg.Seed,
		})
	case EngineSharded:
		return NewSharded(ShardedConfig{
			N:          cfg.N,
			NewCore:    cfg.NewCore,
			InitDegree: cfg.InitDegree,
			Loss:       cfg.Loss,
			Conditions: cfg.Conditions,
			Workers:    cfg.Workers,
			ShardSize:  cfg.ShardSize,
			Seed:       cfg.Seed,
		})
	}
	return nil, fmt.Errorf("runtime: unknown engine %q", cfg.Engine)
}
