package stats

import (
	"fmt"
	"math"
)

// LogChoose returns log of the binomial coefficient C(n, k) using the
// log-gamma function, avoiding overflow for the large coefficients of
// Eq (6.1) (e.g. C(90, 45)).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lgamma(float64(n)+1) - lgamma(float64(k)+1) - lgamma(float64(n-k)+1)
}

// Choose returns C(n, k) as a float64 (0 when k out of range).
func Choose(n, k int) float64 {
	lc := LogChoose(n, k)
	if math.IsInf(lc, -1) {
		return 0
	}
	return math.Exp(lc)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p), by direct summation
// (n is small in this repository).
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	s := 0.0
	for i := 0; i <= k; i++ {
		s += BinomialPMF(n, i, p)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// BinomialDist returns the full pmf of Binomial(n, p) over 0..n. Figures 6.1
// and 6.3 plot it as the reference curve with the same expectation as the
// S&F degree distributions.
func BinomialDist(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	for k := range pmf {
		pmf[k] = BinomialPMF(n, k, p)
	}
	return pmf
}

// DistMean returns the mean of a pmf indexed by value (pmf[v] = P(X = v)).
func DistMean(pmf []float64) float64 {
	m := 0.0
	for v, p := range pmf {
		m += float64(v) * p
	}
	return m
}

// DistVariance returns the variance of a pmf indexed by value.
func DistVariance(pmf []float64) float64 {
	m := DistMean(pmf)
	s := 0.0
	for v, p := range pmf {
		d := float64(v) - m
		s += d * d * p
	}
	return s
}

// DistStdDev returns the standard deviation of a pmf indexed by value.
func DistStdDev(pmf []float64) float64 { return math.Sqrt(DistVariance(pmf)) }

// Normalize scales a nonnegative weight vector to sum to 1. It returns an
// error if the weights sum to zero or contain negatives/NaNs.
func Normalize(w []float64) ([]float64, error) {
	s := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("stats: invalid weight %v", x)
		}
		s += x
	}
	if s == 0 {
		return nil, fmt.Errorf("stats: weights sum to zero")
	}
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = x / s
	}
	return out, nil
}

// TotalVariation returns the total-variation distance between two pmfs,
// 0.5 * sum |p_i - q_i|. Shorter vectors are zero-padded.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		var pi, qi float64
		if i < len(p) {
			pi = p[i]
		}
		if i < len(q) {
			qi = q[i]
		}
		s += math.Abs(pi - qi)
	}
	return s / 2
}

// KSDistance returns the Kolmogorov-Smirnov statistic between two pmfs over
// the same integer support: the maximum absolute difference of their CDFs.
func KSDistance(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	maxD, cp, cq := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		if i < len(p) {
			cp += p[i]
		}
		if i < len(q) {
			cq += q[i]
		}
		if d := math.Abs(cp - cq); d > maxD {
			maxD = d
		}
	}
	return maxD
}
