package stats

import (
	"fmt"
	"math"
)

// lgamma returns log|Gamma(x)|, wrapping math.Lgamma and discarding the
// sign (all call sites use x > 0 where Gamma is positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedGammaP returns P(a, x) = gamma(a, x)/Gamma(a), the regularized
// lower incomplete gamma function, computed with the standard series
// expansion for x < a+1 and the continued fraction for x >= a+1
// (Numerical Recipes style, implemented from scratch on math only).
func RegularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("stats: invalid incomplete gamma arguments a=%v x=%v", a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return p, err
	}
	q, err := gammaQContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// RegularizedGammaQ returns Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) (float64, error) {
	p, err := RegularizedGammaP(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

const (
	gammaMaxIter = 500
	gammaEps     = 3e-14
)

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) (float64, error) {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lgamma(a)), nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma series did not converge (a=%v x=%v)", a, x)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lgamma(a)) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma continued fraction did not converge (a=%v x=%v)", a, x)
}

// ChiSquareStat returns the chi-square statistic sum (obs-exp)^2/exp over
// cells with positive expectation. It returns an error if a cell has
// nonpositive expectation but positive observation, which would make the
// test meaningless.
func ChiSquareStat(observed []float64, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: chi-square length mismatch %d != %d", len(observed), len(expected))
	}
	stat := 0.0
	for i := range observed {
		if expected[i] <= 0 {
			if observed[i] > 0 {
				return 0, fmt.Errorf("stats: cell %d has expectation %v with observation %v", i, expected[i], observed[i])
			}
			continue
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
	}
	return stat, nil
}

// ChiSquarePValue returns P(X >= stat) for X ~ ChiSquare(df), via the
// regularized upper incomplete gamma Q(df/2, stat/2).
func ChiSquarePValue(stat float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square with df=%d", df)
	}
	if stat < 0 {
		return 0, fmt.Errorf("stats: negative chi-square statistic %v", stat)
	}
	return RegularizedGammaQ(float64(df)/2, stat/2)
}

// ChiSquareUniformTest tests the hypothesis that counts are draws from the
// uniform distribution over len(counts) cells, returning the statistic and
// p-value. Lemma 7.6's uniformity experiment uses it.
func ChiSquareUniformTest(counts []int) (stat, pValue float64, err error) {
	if len(counts) < 2 {
		return 0, 0, fmt.Errorf("stats: uniform test needs >= 2 cells, got %d", len(counts))
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, fmt.Errorf("stats: negative count %d", c)
		}
		total += c
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("stats: uniform test with no observations")
	}
	obs := make([]float64, len(counts))
	exp := make([]float64, len(counts))
	e := float64(total) / float64(len(counts))
	for i, c := range counts {
		obs[i] = float64(c)
		exp[i] = e
	}
	stat, err = ChiSquareStat(obs, exp)
	if err != nil {
		return 0, 0, err
	}
	pValue, err = ChiSquarePValue(stat, len(counts)-1)
	return stat, pValue, err
}
