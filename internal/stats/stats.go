// Package stats provides the statistical machinery the experiments use:
// online moment accumulators, integer histograms, discrete distributions
// (binomial reference curves for Figures 6.1 and 6.3), distribution
// distances, and a chi-square goodness-of-fit test built on an incomplete
// gamma implemented from scratch.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean, and variance online using Welford's
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance (dividing by n, matching the
// paper's use of distribution variance; 0 when n < 1).
func (a *Accumulator) Variance() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
func (a *Accumulator) SampleVariance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// String summarizes the accumulator as "mean ± stddev (n=...)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.4g ± %.4g (n=%d)", a.Mean(), a.StdDev(), a.n)
}

// Histogram counts integer observations.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Observe adds one observation of value v.
func (h *Histogram) Observe(v int) { h.ObserveN(v, 1) }

// ObserveN adds k observations of value v.
func (h *Histogram) ObserveN(v, k int) {
	h.counts[v] += k
	h.total += k
}

// Count returns the number of observations of v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Support returns the observed values in ascending order.
func (h *Histogram) Support() []int {
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// Mean returns the histogram mean. Accumulation runs over the sorted
// support, not the count map directly: float addition is not associative,
// so summing in Go's randomized map order would let the last digits of
// reported means differ between identically-seeded runs.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	s := 0.0
	for _, v := range h.Support() {
		s += float64(v) * float64(h.counts[v])
	}
	return s / float64(h.total)
}

// Variance returns the population variance of the histogram, accumulated
// over the sorted support for the same bit-reproducibility reason as Mean.
func (h *Histogram) Variance() float64 {
	if h.total == 0 {
		return 0
	}
	m := h.Mean()
	s := 0.0
	for _, v := range h.Support() {
		d := float64(v) - m
		s += d * d * float64(h.counts[v])
	}
	return s / float64(h.total)
}

// StdDev returns the population standard deviation of the histogram.
func (h *Histogram) StdDev() float64 { return math.Sqrt(h.Variance()) }

// PMF returns the normalized probability mass function over 0..max(support)
// as a dense slice. An empty histogram yields a nil slice.
func (h *Histogram) PMF() []float64 {
	if h.total == 0 {
		return nil
	}
	maxV := 0
	for v := range h.counts {
		if v > maxV {
			maxV = v
		}
		if v < 0 {
			panic("stats: PMF on histogram with negative support")
		}
	}
	pmf := make([]float64, maxV+1)
	for v, c := range h.counts {
		pmf[v] = float64(c) / float64(h.total)
	}
	return pmf
}

// Quantile returns the smallest value v with CDF(v) >= q, for q in (0, 1].
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 || q <= 0 || q > 1 {
		return 0
	}
	need := int(math.Ceil(q * float64(h.total)))
	acc := 0
	for _, v := range h.Support() {
		acc += h.counts[v]
		if acc >= need {
			return v
		}
	}
	sup := h.Support()
	return sup[len(sup)-1]
}
