package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero-value accumulator not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	if !almostEqual(a.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", a.Variance())
	}
	if !almostEqual(a.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", a.StdDev())
	}
	if !almostEqual(a.SampleVariance(), 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want 32/7", a.SampleVariance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 || a.SampleVariance() != 0 {
		t.Errorf("single observation: mean=%v var=%v", a.Mean(), a.Variance())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Observe(1)
	h.ObserveN(3, 2)
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 2 || h.Count(2) != 0 {
		t.Errorf("counts wrong: %d %d %d", h.Count(1), h.Count(3), h.Count(2))
	}
	sup := h.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Errorf("Support = %v, want [1 3]", sup)
	}
	if !almostEqual(h.Mean(), 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", h.Mean())
	}
	if !almostEqual(h.Variance(), 1, 1e-12) {
		t.Errorf("Variance = %v, want 1", h.Variance())
	}
	pmf := h.PMF()
	if len(pmf) != 4 || !almostEqual(pmf[1], 0.5, 1e-12) || !almostEqual(pmf[3], 0.5, 1e-12) {
		t.Errorf("PMF = %v", pmf)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 10; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("Quantile(0.5) = %d, want 5", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Errorf("Quantile(1.0) = %d, want 10", q)
	}
	if q := h.Quantile(0.05); q != 1 {
		t.Errorf("Quantile(0.05) = %d, want 1", q)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Variance() != 0 || h.PMF() != nil || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should return zero values")
	}
}

func TestChoose(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {0, 0, 1},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, tt := range tests {
		if got := Choose(tt.n, tt.k); !almostEqual(got, tt.want, 1e-9*math.Max(1, tt.want)) {
			t.Errorf("Choose(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	// Large value sanity: C(90,45) ~ 1.038e26, checked against exact
	// integer arithmetic.
	if got := Choose(90, 45); got < 1.03e26 || got > 1.05e26 {
		t.Errorf("Choose(90,45) = %v, want ~1.038e26", got)
	}
}

func TestBinomialPMF(t *testing.T) {
	if got := BinomialPMF(4, 2, 0.5); !almostEqual(got, 0.375, 1e-12) {
		t.Errorf("BinomialPMF(4,2,0.5) = %v, want 0.375", got)
	}
	if got := BinomialPMF(10, 0, 0); got != 1 {
		t.Errorf("BinomialPMF(10,0,0) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("BinomialPMF(10,10,1) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 3, 0); got != 0 {
		t.Errorf("BinomialPMF(10,3,0) = %v, want 0", got)
	}
	if got := BinomialPMF(10, 11, 0.5); got != 0 {
		t.Errorf("out-of-range k = %v, want 0", got)
	}
	// pmf sums to 1.
	s := 0.0
	for k := 0; k <= 30; k++ {
		s += BinomialPMF(30, k, 0.3)
	}
	if !almostEqual(s, 1, 1e-9) {
		t.Errorf("Binomial(30,0.3) pmf sums to %v", s)
	}
}

func TestBinomialCDF(t *testing.T) {
	if got := BinomialCDF(4, 4, 0.5); got != 1 {
		t.Errorf("CDF at n = %v, want 1", got)
	}
	if got := BinomialCDF(4, -1, 0.5); got != 0 {
		t.Errorf("CDF below 0 = %v, want 0", got)
	}
	want := 0.0625 + 0.25 // P(0)+P(1) for n=4, p=0.5
	if got := BinomialCDF(4, 1, 0.5); !almostEqual(got, want, 1e-12) {
		t.Errorf("BinomialCDF(4,1,0.5) = %v, want %v", got, want)
	}
}

func TestBinomialDistMoments(t *testing.T) {
	pmf := BinomialDist(40, 0.7)
	if !almostEqual(DistMean(pmf), 28, 1e-9) {
		t.Errorf("mean = %v, want 28", DistMean(pmf))
	}
	if !almostEqual(DistVariance(pmf), 8.4, 1e-9) {
		t.Errorf("variance = %v, want 8.4", DistVariance(pmf))
	}
	if !almostEqual(DistStdDev(pmf), math.Sqrt(8.4), 1e-9) {
		t.Errorf("stddev = %v", DistStdDev(pmf))
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], 0.25, 1e-12) || !almostEqual(got[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", got)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("Normalize accepted all-zero weights")
	}
	if _, err := Normalize([]float64{1, -1}); err == nil {
		t.Error("Normalize accepted negative weight")
	}
	if _, err := Normalize([]float64{math.NaN()}); err == nil {
		t.Error("Normalize accepted NaN")
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if got := TotalVariation(p, q); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("TV = %v, want 0.5", got)
	}
	if got := TotalVariation(p, p); got != 0 {
		t.Errorf("TV(p,p) = %v, want 0", got)
	}
	// Different lengths: pad with zeros.
	if got := TotalVariation([]float64{1}, []float64{0.5, 0.5}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("padded TV = %v, want 0.5", got)
	}
}

func TestKSDistance(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	if got := KSDistance(p, q); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("KS = %v, want 0.5", got)
	}
	if got := KSDistance(p, p); got != 0 {
		t.Errorf("KS(p,p) = %v, want 0", got)
	}
}

func TestRegularizedGamma(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 2.5, 10} {
		got, err := RegularizedGammaP(1, x)
		if err != nil {
			t.Fatalf("P(1,%v): %v", x, err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; Q(a, 0) = 1.
	p, err := RegularizedGammaP(3, 0)
	if err != nil || p != 0 {
		t.Errorf("P(3,0) = %v, %v; want 0", p, err)
	}
	// Known value: P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		got, err := RegularizedGammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
	if _, err := RegularizedGammaP(-1, 1); err == nil {
		t.Error("accepted a <= 0")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("accepted x < 0")
	}
}

func TestChiSquarePValue(t *testing.T) {
	// ChiSquare(2) survival at x is exp(-x/2): P(X >= 5.991) ~ 0.05.
	got, err := ChiSquarePValue(5.991, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.05, 1e-3) {
		t.Errorf("p-value = %v, want ~0.05", got)
	}
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Error("accepted df=0")
	}
	if _, err := ChiSquarePValue(-1, 2); err == nil {
		t.Error("accepted negative statistic")
	}
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, err := ChiSquareStat([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := ChiSquareStat([]float64{1}, []float64{0}); err == nil {
		t.Error("accepted zero expectation with positive observation")
	}
	// Zero expectation with zero observation is fine (cell skipped).
	stat, err := ChiSquareStat([]float64{0, 2}, []float64{0, 2})
	if err != nil || stat != 0 {
		t.Errorf("stat = %v, err = %v; want 0, nil", stat, err)
	}
}

func TestChiSquareUniformTest(t *testing.T) {
	// Perfectly uniform counts: statistic 0, p-value 1.
	stat, p, err := ChiSquareUniformTest([]int{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || !almostEqual(p, 1, 1e-12) {
		t.Errorf("uniform counts: stat=%v p=%v", stat, p)
	}
	// Extremely skewed counts: p-value ~ 0.
	_, p, err = ChiSquareUniformTest([]int{1000, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Errorf("skewed counts p-value = %v, want ~0", p)
	}
	if _, _, err := ChiSquareUniformTest([]int{5}); err == nil {
		t.Error("accepted single cell")
	}
	if _, _, err := ChiSquareUniformTest([]int{0, 0}); err == nil {
		t.Error("accepted empty counts")
	}
	if _, _, err := ChiSquareUniformTest([]int{-1, 2}); err == nil {
		t.Error("accepted negative count")
	}
}

func TestQuickAccumulatorMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var a Accumulator
		sum := 0.0
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		return almostEqual(a.Mean(), mean, 1e-6*(1+math.Abs(mean)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTVBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		w := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			w[i] = float64(r)
			if r > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		p, err := Normalize(w)
		if err != nil {
			return false
		}
		q := make([]float64, len(p))
		q[0] = 1
		tv := TotalVariation(p, q)
		return tv >= 0 && tv <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
