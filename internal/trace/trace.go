// Package trace records simulation runs as JSON Lines for offline
// debugging and analysis. A Recorder attaches to the engine's OnAction hook
// and appends one compact record per protocol action; Load reads a trace
// back for assertions or replay tooling.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"sendforget/internal/engine"
)

// Record is one traced protocol action.
type Record struct {
	Step        int   `json:"step"`
	Initiator   int32 `json:"from"`
	Sent        bool  `json:"sent"`
	To          int32 `json:"to,omitempty"`
	Lost        bool  `json:"lost,omitempty"`
	DeadLetters int   `json:"dead,omitempty"`
	Delivered   int   `json:"delivered,omitempty"`
}

// fromEvent converts an engine event.
func fromEvent(ev engine.ActionEvent) Record {
	return Record{
		Step:        ev.Step,
		Initiator:   int32(ev.Initiator),
		Sent:        ev.Sent,
		To:          int32(ev.To),
		Lost:        ev.Lost,
		DeadLetters: ev.DeadLetters,
		Delivered:   ev.Delivered,
	}
}

// Recorder streams action records to a writer as JSON Lines. Safe for use
// from a single engine; Flush/Close from the owning goroutine.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewRecorder wraps w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Attach registers the recorder on the engine's OnAction hook, chaining any
// previously installed hook.
func (rec *Recorder) Attach(e *engine.Engine) {
	prev := e.OnAction
	e.OnAction = func(ev engine.ActionEvent) {
		if prev != nil {
			prev(ev)
		}
		rec.Observe(ev)
	}
}

// Observe appends one event.
func (rec *Recorder) Observe(ev engine.ActionEvent) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.err != nil {
		return
	}
	if err := rec.enc.Encode(fromEvent(ev)); err != nil {
		rec.err = err
		return
	}
	rec.n++
}

// Count returns the number of records written.
func (rec *Recorder) Count() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.n
}

// Flush drains the buffer and reports the first error encountered.
func (rec *Recorder) Flush() error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.err != nil {
		return rec.err
	}
	return rec.w.Flush()
}

// Load parses a JSON Lines trace.
func Load(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary aggregates a loaded trace.
type Summary struct {
	Steps     int
	SelfLoops int
	Sends     int
	Losses    int
	Delivered int
}

// Summarize folds records into totals.
func Summarize(records []Record) Summary {
	var s Summary
	for _, r := range records {
		s.Steps++
		if !r.Sent {
			s.SelfLoops++
			continue
		}
		s.Sends++
		if r.Lost {
			s.Losses++
		}
		s.Delivered += r.Delivered
	}
	return s
}
