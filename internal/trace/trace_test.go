package trace

import (
	"bytes"
	"strings"
	"testing"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
)

func TestRecorderRoundtrip(t *testing.T) {
	p, err := sendforget.New(sendforget.Config{N: 30, S: 12, DL: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(p, loss.MustUniform(0.2), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(e)
	e.Run(20)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 600 {
		t.Fatalf("Count = %d, want 600", rec.Count())
	}
	records, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 600 {
		t.Fatalf("loaded %d records, want 600", len(records))
	}
	s := Summarize(records)
	c := e.Counters()
	if s.Steps != c.Steps || s.Sends != c.Sends || s.Losses != c.Losses || s.Delivered != c.Deliveries {
		t.Errorf("summary %+v does not match counters %+v", s, c)
	}
	if s.SelfLoops == 0 || s.Losses == 0 {
		t.Errorf("expected a mix of outcomes: %+v", s)
	}
	// Steps are sequential.
	for i, r := range records {
		if r.Step != i+1 {
			t.Fatalf("record %d has step %d", i, r.Step)
		}
	}
}

func TestAttachChainsHooks(t *testing.T) {
	p, err := sendforget.New(sendforget.Config{N: 10, S: 12, DL: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(p, loss.None{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	prevCalls := 0
	e.OnAction = func(engine.ActionEvent) { prevCalls++ }
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(e)
	e.Run(3)
	if prevCalls != 30 {
		t.Errorf("previous hook called %d times, want 30", prevCalls)
	}
	if rec.Count() != 30 {
		t.Errorf("recorder observed %d events, want 30", rec.Count())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{bad json}\n")); err == nil {
		t.Error("accepted malformed line")
	}
	records, err := Load(strings.NewReader("\n\n"))
	if err != nil || len(records) != 0 {
		t.Errorf("blank lines: %v, %v", records, err)
	}
}

func TestRecorderWriteError(t *testing.T) {
	rec := NewRecorder(failWriter{})
	for i := 0; i < 10000; i++ {
		rec.Observe(engine.ActionEvent{Step: i + 1})
	}
	if err := rec.Flush(); err == nil {
		t.Error("write error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }
