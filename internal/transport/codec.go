// Package transport carries protocol messages between nodes of the
// concurrent runtime: an in-memory lossy network for tests and examples,
// and a UDP transport (cmd/sfnode) demonstrating that S&F needs nothing
// beyond fire-and-forget datagrams — no acknowledgements, retransmissions,
// or connection state, exactly the paper's "send & forget" premise.
package transport

import (
	"encoding/binary"
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
)

// Wire format (big endian):
//
//	magic   uint16  0x5346 ("SF")
//	version uint8   1 (bare) or 2 (addressed)
//	kind    uint8
//	from    int32
//	flags   uint8   bit0 = dup
//	count   uint8   number of ids
//	ids     int32 x count
//
// Version 2 appends, per id, a length-prefixed UTF-8 address string
// (uint8 length; 0 = unknown). The paper models ids as "IP addresses and
// ports"; carrying addresses alongside ids lets a deployment's directory
// self-populate from gossip instead of requiring static configuration.
const (
	wireMagic    = 0x5346
	wireVersion  = 1
	wireVersion2 = 2
	headerLen    = 2 + 1 + 1 + 4 + 1 + 1
	maxWireIDs   = 255
	maxWireAddr  = 255
)

// Marshal encodes a protocol message into a datagram payload.
func Marshal(msg protocol.Message) ([]byte, error) {
	if len(msg.IDs) > maxWireIDs {
		return nil, fmt.Errorf("transport: %d ids exceed wire limit %d", len(msg.IDs), maxWireIDs)
	}
	buf := make([]byte, headerLen+4*len(msg.IDs))
	binary.BigEndian.PutUint16(buf[0:2], wireMagic)
	buf[2] = wireVersion
	buf[3] = byte(msg.Kind)
	binary.BigEndian.PutUint32(buf[4:8], uint32(int32(msg.From)))
	if msg.Dup {
		buf[8] = 1
	}
	buf[9] = byte(len(msg.IDs))
	for i, id := range msg.IDs {
		binary.BigEndian.PutUint32(buf[headerLen+4*i:], uint32(int32(id)))
	}
	return buf, nil
}

// MarshalAddressed encodes a version-2 datagram carrying one address string
// per id (empty = unknown). len(addrs) must equal len(msg.IDs).
func MarshalAddressed(msg protocol.Message, addrs []string) ([]byte, error) {
	if len(addrs) != len(msg.IDs) {
		return nil, fmt.Errorf("transport: %d addresses for %d ids", len(addrs), len(msg.IDs))
	}
	buf, err := Marshal(msg)
	if err != nil {
		return nil, err
	}
	buf[2] = wireVersion2
	for _, a := range addrs {
		if len(a) > maxWireAddr {
			return nil, fmt.Errorf("transport: address %q exceeds %d bytes", a, maxWireAddr)
		}
		buf = append(buf, byte(len(a)))
		buf = append(buf, a...)
	}
	return buf, nil
}

// Unmarshal decodes a datagram payload (either wire version); version-2
// address payloads are ignored. Use UnmarshalAddressed to retrieve them.
func Unmarshal(buf []byte) (protocol.Message, error) {
	msg, _, err := UnmarshalAddressed(buf)
	return msg, err
}

// UnmarshalAddressed decodes a datagram payload. For version-1 datagrams
// addrs is nil; for version 2 it has one entry per id (possibly empty).
func UnmarshalAddressed(buf []byte) (protocol.Message, []string, error) {
	if len(buf) < headerLen {
		return protocol.Message{}, nil, fmt.Errorf("transport: short datagram (%d bytes)", len(buf))
	}
	if binary.BigEndian.Uint16(buf[0:2]) != wireMagic {
		return protocol.Message{}, nil, fmt.Errorf("transport: bad magic")
	}
	version := buf[2]
	if version != wireVersion && version != wireVersion2 {
		return protocol.Message{}, nil, fmt.Errorf("transport: unsupported version %d", version)
	}
	if buf[8]&^1 != 0 {
		// Reject unknown flag bits: the format defines only bit0 (dup),
		// and accepting extras would break the canonical encoding.
		return protocol.Message{}, nil, fmt.Errorf("transport: unknown flag bits %#x", buf[8])
	}
	count := int(buf[9])
	idsEnd := headerLen + 4*count
	if len(buf) < idsEnd {
		return protocol.Message{}, nil, fmt.Errorf("transport: length %d does not match %d ids", len(buf), count)
	}
	if version == wireVersion && len(buf) != idsEnd {
		return protocol.Message{}, nil, fmt.Errorf("transport: length %d does not match %d ids", len(buf), count)
	}
	msg := protocol.Message{
		Kind: protocol.Kind(buf[3]),
		From: peer.ID(int32(binary.BigEndian.Uint32(buf[4:8]))),
		Dup:  buf[8]&1 == 1,
	}
	if count > 0 {
		msg.IDs = make([]peer.ID, count)
		for i := range msg.IDs {
			msg.IDs[i] = peer.ID(int32(binary.BigEndian.Uint32(buf[headerLen+4*i:])))
		}
	}
	if version == wireVersion {
		return msg, nil, nil
	}
	// Version 2: parse the address trailer.
	addrs := make([]string, count)
	off := idsEnd
	for i := 0; i < count; i++ {
		if off >= len(buf) {
			return protocol.Message{}, nil, fmt.Errorf("transport: truncated address trailer")
		}
		alen := int(buf[off])
		off++
		if off+alen > len(buf) {
			return protocol.Message{}, nil, fmt.Errorf("transport: truncated address %d", i)
		}
		addrs[i] = string(buf[off : off+alen])
		off += alen
	}
	if off != len(buf) {
		return protocol.Message{}, nil, fmt.Errorf("transport: %d trailing bytes", len(buf)-off)
	}
	return msg, addrs, nil
}
