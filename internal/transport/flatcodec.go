package transport

import (
	"encoding/binary"
	"errors"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
)

// This file is the batch path's wire codec: the same version-1 format as
// Marshal/Unmarshal, but in append/decode-into style so a warmed-up caller
// never touches the allocator. Marshal allocates a fresh buffer per message
// by design (its callers hand the slice to a datagram write and move on);
// a streaming transport coalescing thousands of FlatMsgs per write cannot
// afford that, so AppendFlat extends a caller-owned buffer and
// UnmarshalFlatInto decodes straight into a pooled Outbox arena. Both
// functions are //vet:hotpath roots: the hotalloc analyzer proves every
// branch of them allocation-free.

// Error sentinels are package-level values so the hot decode path returns
// pre-existing interface values instead of constructing errors per call.
var (
	// ErrFlatOversize reports a message whose id count exceeds the wire
	// format's 255-id limit.
	ErrFlatOversize = errors.New("transport: ids exceed wire limit")
	// ErrFlatTruncated reports a datagram shorter than its header or id
	// count promises.
	ErrFlatTruncated = errors.New("transport: truncated flat datagram")
	// ErrFlatBadHeader reports a bad magic, an unsupported version (the flat
	// decoder speaks version 1 only — version-2 address trailers need string
	// allocation and belong to UnmarshalAddressed), or unknown flag bits.
	ErrFlatBadHeader = errors.New("transport: bad flat datagram header")
)

// AppendFlat appends the version-1 wire encoding of message m (whose ids
// live in o) to dst and returns the extended slice. It is Marshal in
// append style: once dst has warmed up to the message size, an append is
// copy-only. m must point into o.Msgs.
//
//vet:hotpath
func AppendFlat(dst []byte, o *protocol.Outbox, m *protocol.FlatMsg) ([]byte, error) {
	ids := o.MsgIDs(m)
	if len(ids) > maxWireIDs {
		return dst, ErrFlatOversize
	}
	dst = append(dst,
		byte(wireMagic>>8), byte(wireMagic&0xff),
		wireVersion,
		byte(m.Kind))
	var from [4]byte
	binary.BigEndian.PutUint32(from[:], uint32(int32(m.From)))
	dst = append(dst, from[0], from[1], from[2], from[3])
	var flags byte
	if m.Dup {
		flags = 1
	}
	dst = append(dst, flags, byte(len(ids)))
	for _, id := range ids {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], uint32(int32(id)))
		dst = append(dst, w[0], w[1], w[2], w[3])
	}
	return dst, nil
}

// UnmarshalFlatInto decodes one version-1 datagram as a message addressed
// to `to`, appending it to out with the ids stored inline or in out's
// arena. It is Unmarshal in decode-into style: the pooled outbox absorbs
// the ids, so a warmed-up receive loop decodes without allocating.
//
//vet:hotpath
func UnmarshalFlatInto(buf []byte, to peer.ID, out *protocol.Outbox) error {
	if len(buf) < headerLen {
		return ErrFlatTruncated
	}
	if binary.BigEndian.Uint16(buf[0:2]) != wireMagic {
		return ErrFlatBadHeader
	}
	if buf[2] != wireVersion {
		return ErrFlatBadHeader
	}
	if buf[8]&^1 != 0 {
		return ErrFlatBadHeader
	}
	count := int(buf[9])
	if len(buf) != headerLen+4*count {
		return ErrFlatTruncated
	}
	m := protocol.FlatMsg{
		To:    to,
		From:  peer.ID(int32(binary.BigEndian.Uint32(buf[4:8]))),
		IDLen: int32(count),
		Kind:  protocol.Kind(buf[3]),
		Dup:   buf[8]&1 == 1,
	}
	if count <= 2 {
		for i := 0; i < count; i++ {
			m.IDs[i] = peer.ID(int32(binary.BigEndian.Uint32(buf[headerLen+4*i:])))
		}
	} else {
		m.IDOff = int32(len(out.IDs))
		for i := 0; i < count; i++ {
			out.IDs = append(out.IDs, peer.ID(int32(binary.BigEndian.Uint32(buf[headerLen+4*i:]))))
		}
	}
	out.Msgs = append(out.Msgs, m)
	return nil
}
