package transport

import (
	"bytes"
	"errors"
	"testing"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
)

// TestFlatCodecMatchesMarshal proves the flat codec speaks byte-identical
// version-1 wire format: AppendFlat's output equals Marshal's for every id
// arity (inline 0/1/2 and arena >2), and UnmarshalFlatInto round-trips what
// Unmarshal decodes.
func TestFlatCodecMatchesMarshal(t *testing.T) {
	cases := [][]peer.ID{
		nil,
		{7},
		{3, 9},
		{1, 2, 3, 4, 5}, // arena path
	}
	for _, ids := range cases {
		var src protocol.Outbox
		src.Append(42, 6, protocol.Kind(2), true, ids...)
		m := &src.Msgs[0]

		want, err := Marshal(protocol.Message{Kind: protocol.Kind(2), From: 6, IDs: ids, Dup: true})
		if err != nil {
			t.Fatalf("Marshal(%v): %v", ids, err)
		}
		got, err := AppendFlat(nil, &src, m)
		if err != nil {
			t.Fatalf("AppendFlat(%v): %v", ids, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("AppendFlat(%v) = %x, Marshal = %x", ids, got, want)
		}

		var dst protocol.Outbox
		if err := UnmarshalFlatInto(got, 42, &dst); err != nil {
			t.Fatalf("UnmarshalFlatInto(%v): %v", ids, err)
		}
		if dst.Len() != 1 {
			t.Fatalf("decoded %d messages, want 1", dst.Len())
		}
		d := &dst.Msgs[0]
		if d.To != 42 || d.From != 6 || d.Kind != protocol.Kind(2) || !d.Dup {
			t.Errorf("decoded header %+v mismatch", d)
		}
		gotIDs := dst.MsgIDs(d)
		if len(gotIDs) != len(ids) {
			t.Fatalf("decoded %d ids, want %d", len(gotIDs), len(ids))
		}
		for i := range ids {
			if gotIDs[i] != ids[i] {
				t.Errorf("id[%d] = %d, want %d", i, gotIDs[i], ids[i])
			}
		}
	}
}

// TestFlatCodecAppends verifies AppendFlat extends dst in place (coalescing
// several messages into one write buffer) and that decode accumulates into
// the same outbox.
func TestFlatCodecAppends(t *testing.T) {
	var src protocol.Outbox
	src.Append2(1, 2, protocol.Kind(1), false, 10, 11)
	src.Append1(3, 4, protocol.Kind(3), true, 12)

	var buf []byte
	var offs []int
	for i := range src.Msgs {
		var err error
		offs = append(offs, len(buf))
		if buf, err = AppendFlat(buf, &src, &src.Msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	offs = append(offs, len(buf))

	var dst protocol.Outbox
	for i := range src.Msgs {
		if err := UnmarshalFlatInto(buf[offs[i]:offs[i+1]], src.Msgs[i].To, &dst); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Len() != 2 {
		t.Fatalf("decoded %d messages, want 2", dst.Len())
	}
	if dst.Msgs[0].To != 1 || dst.Msgs[1].To != 3 {
		t.Errorf("decoded To = %d, %d; want 1, 3", dst.Msgs[0].To, dst.Msgs[1].To)
	}
}

// TestFlatCodecErrors exercises the sentinel error paths.
func TestFlatCodecErrors(t *testing.T) {
	var out protocol.Outbox
	if err := UnmarshalFlatInto(nil, 0, &out); !errors.Is(err, ErrFlatTruncated) {
		t.Errorf("short buf: %v, want ErrFlatTruncated", err)
	}
	good, err := Marshal(protocol.Message{Kind: 1, From: 2, IDs: []peer.ID{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(good)
	bad[0] = 0xff
	if err := UnmarshalFlatInto(bad, 0, &out); !errors.Is(err, ErrFlatBadHeader) {
		t.Errorf("bad magic: %v, want ErrFlatBadHeader", err)
	}
	bad = bytes.Clone(good)
	bad[2] = wireVersion2 // flat decoder is version-1 only
	if err := UnmarshalFlatInto(bad, 0, &out); !errors.Is(err, ErrFlatBadHeader) {
		t.Errorf("version 2: %v, want ErrFlatBadHeader", err)
	}
	bad = bytes.Clone(good)
	bad[9] = 200 // claims more ids than the payload carries
	if err := UnmarshalFlatInto(bad, 0, &out); !errors.Is(err, ErrFlatTruncated) {
		t.Errorf("bad count: %v, want ErrFlatTruncated", err)
	}
	if out.Len() != 0 {
		t.Errorf("failed decodes appended %d messages", out.Len())
	}
}

// TestFlatCodecZeroAlloc is the dynamic cross-check of what hotalloc proves
// statically: a warmed-up encode/decode round trip performs zero
// allocations.
func TestFlatCodecZeroAlloc(t *testing.T) {
	var src protocol.Outbox
	src.Append(9, 1, protocol.Kind(1), false, 2, 3, 4, 5) // arena path
	src.Append2(8, 1, protocol.Kind(1), false, 2, 3)      // inline path
	buf := make([]byte, 0, 256)
	var dst protocol.Outbox
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		dst.Reset()
		for i := range src.Msgs {
			var err error
			if buf, err = AppendFlat(buf, &src, &src.Msgs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := UnmarshalFlatInto(buf, 9, &dst); err == nil {
			t.Fatal("concatenated buffer should not decode as one datagram")
		}
		if err := UnmarshalFlatInto(buf[:headerLen+16], 9, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("flat codec round trip allocates %v times per run, want 0", allocs)
	}
}
