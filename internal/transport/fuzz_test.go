package transport

import (
	"bytes"
	"testing"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
)

// FuzzUnmarshal feeds arbitrary datagrams through the decoder: it must
// never panic, and every accepted payload must re-encode to identical
// bytes (the wire format has a unique canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	seed, err := Marshal(protocol.Message{
		Kind: protocol.KindGossip, From: 7, IDs: []peer.ID{7, 42}, Dup: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x46, 1, 0, 0, 0, 0, 0, 0, 0})
	seed2, err := MarshalAddressed(protocol.Message{
		Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1, 2},
	}, []string{"127.0.0.1:7000", ""})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed2)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, addrs, err := UnmarshalAddressed(data)
		if err != nil {
			return
		}
		var out []byte
		if addrs == nil {
			out, err = Marshal(msg)
		} else {
			out, err = MarshalAddressed(msg, addrs)
		}
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical roundtrip: %x -> %x", data, out)
		}
	})
}
