package transport

import (
	"fmt"
	"sync"

	"sendforget/internal/driver"
	"sendforget/internal/faults"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

// Handler consumes a delivered message at a node. Handlers run on the
// sender's goroutine (or the drain goroutine for delayed messages) and must
// not block.
type Handler func(msg protocol.Message)

// Counters aggregates network-level events. The semantics are the unified
// cross-substrate ones documented on metrics.Traffic: Sent counts every
// attempted transmission, incremented before the fault layer, routing, or
// marshalling rules on the message; each attempt then lands in exactly one
// of Lost, NoRoute, or Delivered (for delayed messages, when the delay queue
// drains). Endpoint shares the type; its fault-layer fields stay zero.
type Counters struct {
	// Sent counts attempted transmissions.
	Sent int
	// Lost counts messages dropped by the fault layer (base loss model,
	// per-link overrides, and partitions together).
	Lost int
	// Delivered counts messages handed to a receive handler.
	Delivered int
	// NoRoute counts messages with no registered handler or directory
	// entry at delivery time.
	NoRoute int
	// LinkLost is the subset of Lost dropped by per-link overrides.
	LinkLost int
	// PartitionDropped is the subset of Lost dropped by a partition.
	PartitionDropped int
	// Delayed counts messages that entered the delay queue.
	Delayed int
}

// Network is an in-memory datagram network for the concurrent runtime:
// every Send consults the fault-injection conditions (loss, partitions,
// delay), then the receiver's handler runs synchronously — or, for delayed
// messages, when Advance drains the delay queue. The fault decision, delay
// queue, and accounting are the shared internal/driver router, serialized
// under the network lock. Safe for concurrent use.
type Network struct {
	mu     sync.Mutex
	cond   *faults.Conditions
	router *driver.Router
	// handlers is a dense slice indexed by node id: simulator ids are small
	// dense integers (see package peer), so routing is an index instead of
	// a map probe on every Send. The slice grows on Register; unregistered
	// or out-of-range ids are unroutable (nil entry).
	handlers []Handler
}

// NewNetwork builds a network dropping messages per the given loss model —
// the paper's uniform-loss shape, layered as the base model of a fresh
// condition stack.
func NewNetwork(lm loss.Model, r *rng.RNG) (*Network, error) {
	if lm == nil {
		return nil, fmt.Errorf("transport: nil loss model")
	}
	cond, err := faults.New(lm)
	if err != nil {
		return nil, err
	}
	return NewNetworkWithConditions(cond, r)
}

// NewNetworkWithConditions builds a network over an externally owned
// condition stack, for burst-loss, partition, and delay scenarios. The
// conditions instance must not be shared with another substrate's run
// (stateful models would interleave their state).
func NewNetworkWithConditions(cond *faults.Conditions, r *rng.RNG) (*Network, error) {
	if cond == nil || r == nil {
		return nil, fmt.Errorf("transport: nil dependency")
	}
	nw := &Network{cond: cond}
	// A destination is routable while it has a handler; the router calls
	// this under nw.mu.
	nw.router = driver.NewRouter(cond, r, func(id peer.ID) bool {
		return nw.handlerFor(id) != nil
	})
	return nw, nil
}

// Conditions returns the network's fault-injection stack, for dynamic
// reconfiguration (partition, heal, link overrides) mid-run.
func (nw *Network) Conditions() *faults.Conditions { return nw.cond }

// Register attaches a node's receive handler. Re-registering replaces the
// previous handler; a nil handler detaches the node (messages to it are
// then dropped as unroutable, modeling a failed node). Negative ids are
// rejected silently: they can never be routed to (peer.Nil is the empty
// view entry, not an address).
func (nw *Network) Register(id peer.ID, h Handler) {
	if id < 0 {
		return
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	// The conflicting handlerFor read reached from the routable callback is
	// also under nw.mu: the router invokes it only from Route/Deliverable,
	// whose callers hold the lock (see NewNetworkWithConditions) — a
	// cross-package contract the happens-before engine cannot see.
	for int(id) >= len(nw.handlers) {
		//lint:allow sharedguard router calls the routable callback under nw.mu (NewRouter contract)
		nw.handlers = append(nw.handlers, nil)
	}
	//lint:allow sharedguard router calls the routable callback under nw.mu (NewRouter contract)
	nw.handlers[id] = h
}

// handlerFor looks up the handler for id. Callers hold nw.mu.
func (nw *Network) handlerFor(id peer.ID) Handler {
	if id < 0 || int(id) >= len(nw.handlers) {
		return nil
	}
	return nw.handlers[id]
}

// Send transmits msg to the node registered as to. The fault decision and
// handler lookup are serialized; the handler itself runs outside the
// network lock (it takes the receiving node's own lock). Messages assigned
// a delivery delay enter the delay queue and surface on a later Advance.
// The error is always nil; the signature matches the UDP endpoint so the
// runtime can treat both uniformly.
func (nw *Network) Send(to peer.ID, msg protocol.Message) error {
	nw.mu.Lock()
	if nw.router.Route(to, msg) != driver.Delivered {
		nw.mu.Unlock()
		return nil
	}
	h := nw.handlerFor(to)
	nw.mu.Unlock()
	h(msg)
	return nil
}

// Advance moves the network clock one tick and delivers every delayed
// message that came due, in (due, enqueue) order. The cluster calls it at
// each round boundary (manual ticking) or from a drain timer (Start mode);
// routing is resolved at drain time, so a message to a node that departed
// while in flight counts as NoRoute. Handlers run outside the lock.
func (nw *Network) Advance() {
	type delivery struct {
		h   Handler
		msg protocol.Message
	}
	var deliveries []delivery
	nw.mu.Lock()
	nw.router.Tick()
	for {
		d, ok := nw.router.Due()
		if !ok {
			break
		}
		if !nw.router.Deliverable(d.To) {
			continue
		}
		deliveries = append(deliveries, delivery{h: nw.handlerFor(d.To), msg: d.Msg})
	}
	nw.mu.Unlock()
	for _, d := range deliveries {
		d.h(d.msg)
	}
}

// Pending returns the number of messages waiting in the delay queue.
func (nw *Network) Pending() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.router.Pending()
}

// Counters returns a snapshot of the counters.
func (nw *Network) Counters() Counters {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	l := nw.router.Ledger()
	return Counters{
		Sent:             l.Sends,
		Lost:             l.Losses,
		Delivered:        l.Deliveries,
		NoRoute:          l.DeadLetters,
		LinkLost:         l.LinkLosses,
		PartitionDropped: l.PartitionDrops,
		Delayed:          l.Delayed,
	}
}
