package transport

import (
	"fmt"
	"sync"

	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

// Handler consumes a delivered message at a node. Handlers run on the
// sender's goroutine and must not block.
type Handler func(msg protocol.Message)

// Counters aggregates network-level events.
type Counters struct {
	Sent      int
	Lost      int
	Delivered int
	NoRoute   int
}

// Network is an in-memory lossy datagram network for the concurrent
// runtime: every Send independently passes the loss model, then the
// receiver's handler runs synchronously. Safe for concurrent use.
type Network struct {
	mu       sync.Mutex
	lm       loss.Model
	r        *rng.RNG
	handlers map[peer.ID]Handler
	counters Counters
}

// NewNetwork builds a network with the given loss model and randomness.
func NewNetwork(lm loss.Model, r *rng.RNG) (*Network, error) {
	if lm == nil || r == nil {
		return nil, fmt.Errorf("transport: nil dependency")
	}
	return &Network{lm: lm, r: r, handlers: make(map[peer.ID]Handler)}, nil
}

// Register attaches a node's receive handler. Re-registering replaces the
// previous handler; a nil handler detaches the node (messages to it are
// then dropped as unroutable, modeling a failed node).
func (nw *Network) Register(id peer.ID, h Handler) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if h == nil {
		delete(nw.handlers, id)
		return
	}
	nw.handlers[id] = h
}

// Send transmits msg to the node registered as to. The loss decision and
// handler lookup are serialized; the handler itself runs outside the
// network lock (it takes the receiving node's own lock). The error is
// always nil; the signature matches the UDP endpoint so the runtime can
// treat both uniformly.
func (nw *Network) Send(to peer.ID, msg protocol.Message) error {
	nw.mu.Lock()
	nw.counters.Sent++
	if nw.lm.Lost(nw.r) {
		nw.counters.Lost++
		nw.mu.Unlock()
		return nil
	}
	h, ok := nw.handlers[to]
	if !ok {
		nw.counters.NoRoute++
		nw.mu.Unlock()
		return nil
	}
	nw.counters.Delivered++
	nw.mu.Unlock()
	h(msg)
	return nil
}

// Counters returns a snapshot of the counters.
func (nw *Network) Counters() Counters {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.counters
}
