package transport

import (
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func TestCodecRoundtrip(t *testing.T) {
	tests := []protocol.Message{
		{Kind: protocol.KindGossip, From: 7, IDs: []peer.ID{7, 42}, Dup: true},
		{Kind: protocol.KindRequest, From: 0, IDs: []peer.ID{0}},
		{Kind: protocol.KindReply, From: 1000000, IDs: nil},
		{Kind: protocol.KindGossip, From: -1, IDs: []peer.ID{peer.Nil}},
	}
	for _, msg := range tests {
		buf, err := Marshal(msg)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", msg, err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if got.Kind != msg.Kind || got.From != msg.From || got.Dup != msg.Dup || len(got.IDs) != len(msg.IDs) {
			t.Fatalf("roundtrip mismatch: %+v != %+v", got, msg)
		}
		for i := range msg.IDs {
			if got.IDs[i] != msg.IDs[i] {
				t.Fatalf("id %d mismatch: %v != %v", i, got.IDs[i], msg.IDs[i])
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram accepted")
	}
	msg := protocol.Message{From: 1, IDs: []peer.ID{2, 3}}
	buf, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, buf...)
	bad[0] = 0xFF // magic
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, buf...)
	bad[2] = 9 // version
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	huge := protocol.Message{IDs: make([]peer.ID, 300)}
	if _, err := Marshal(huge); err == nil {
		t.Error("oversized id list accepted")
	}
}

func TestCodecQuickRoundtrip(t *testing.T) {
	f := func(kind uint8, from int32, dup bool, rawIDs []int32) bool {
		if len(rawIDs) > maxWireIDs {
			rawIDs = rawIDs[:maxWireIDs]
		}
		ids := make([]peer.ID, len(rawIDs))
		for i, v := range rawIDs {
			ids[i] = peer.ID(v)
		}
		msg := protocol.Message{Kind: protocol.Kind(kind), From: peer.ID(from), Dup: dup, IDs: ids}
		buf, err := Marshal(msg)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if got.Kind != msg.Kind || got.From != msg.From || got.Dup != msg.Dup || len(got.IDs) != len(msg.IDs) {
			return false
		}
		for i := range msg.IDs {
			if got.IDs[i] != msg.IDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkDelivery(t *testing.T) {
	nw, err := NewNetwork(loss.None{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []protocol.Message
	nw.Register(1, func(m protocol.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	nw.Send(1, protocol.Message{From: 0, IDs: []peer.ID{0, 2}})
	nw.Send(2, protocol.Message{From: 0}) // unroutable
	c := nw.Counters()
	if c.Sent != 2 || c.Delivered != 1 || c.NoRoute != 1 || c.Lost != 0 {
		t.Errorf("counters = %+v", c)
	}
	if len(got) != 1 || got[0].From != 0 {
		t.Errorf("delivered = %+v", got)
	}
}

func TestNetworkLoss(t *testing.T) {
	nw, err := NewNetwork(loss.MustUniform(1), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	nw.Register(1, func(protocol.Message) { delivered++ })
	for i := 0; i < 100; i++ {
		nw.Send(1, protocol.Message{From: 0})
	}
	if delivered != 0 {
		t.Errorf("delivered %d messages through 100%% loss", delivered)
	}
	if c := nw.Counters(); c.Lost != 100 {
		t.Errorf("Lost = %d, want 100", c.Lost)
	}
}

func TestNetworkDeregister(t *testing.T) {
	nw, err := NewNetwork(loss.None{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(1, func(protocol.Message) {})
	nw.Register(1, nil) // departed
	nw.Send(1, protocol.Message{From: 0})
	if c := nw.Counters(); c.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", c.NoRoute)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, rng.New(1)); err == nil {
		t.Error("accepted nil loss model")
	}
	if _, err := NewNetwork(loss.None{}, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestUDPEndpointRoundtrip(t *testing.T) {
	type rx struct {
		msg protocol.Message
	}
	ch := make(chan rx, 10)
	a, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { ch <- rx{m} })
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { ch <- rx{m} })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(2, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	want := protocol.Message{Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1, 9}, Dup: true}
	if err := a.Send(2, want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if got.msg.From != 1 || len(got.msg.IDs) != 2 || got.msg.IDs[1] != 9 || !got.msg.Dup {
			t.Errorf("received %+v", got.msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not received within 2s")
	}
	if c := a.Counters(); c.Sent != 1 {
		t.Errorf("sender counters = %+v", c)
	}
	// Unknown destination is a silent drop.
	if err := a.Send(99, want); err != nil {
		t.Fatal(err)
	}
	if c := a.Counters(); c.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", c.NoRoute)
	}
}

func TestUDPEndpointBadDatagram(t *testing.T) {
	received := make(chan struct{}, 1)
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) { received <- struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	conn, err := net.Dial("udp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for ep.DecodeErrors() == 0 {
		select {
		case <-received:
			t.Fatal("garbage datagram dispatched to handler")
		case <-deadline:
			t.Fatal("decode error not recorded within 2s")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestUDPEndpointValidation(t *testing.T) {
	if _, err := NewEndpoint("127.0.0.1:0", nil); err == nil {
		t.Error("accepted nil handler")
	}
	if _, err := NewEndpoint("not-an-addr:xx", func(protocol.Message) {}); err == nil {
		t.Error("accepted invalid listen address")
	}
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.AddPeer(1, "bad:addr:xx"); err == nil {
		t.Error("accepted invalid peer address")
	}
}

func TestUDPEndpointCloseIdempotent(t *testing.T) {
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestAddressedCodecRoundtrip(t *testing.T) {
	msg := protocol.Message{Kind: protocol.KindGossip, From: 3, IDs: []peer.ID{3, 9}, Dup: true}
	addrs := []string{"127.0.0.1:7000", ""}
	buf, err := MarshalAddressed(msg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	got, gotAddrs, err := UnmarshalAddressed(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || len(got.IDs) != 2 || !got.Dup {
		t.Errorf("message = %+v", got)
	}
	if len(gotAddrs) != 2 || gotAddrs[0] != addrs[0] || gotAddrs[1] != "" {
		t.Errorf("addrs = %v, want %v", gotAddrs, addrs)
	}
	// Plain Unmarshal accepts v2 and drops the trailer.
	plain, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.From != 3 {
		t.Errorf("plain decode = %+v", plain)
	}
}

func TestAddressedCodecErrors(t *testing.T) {
	msg := protocol.Message{From: 1, IDs: []peer.ID{2}}
	if _, err := MarshalAddressed(msg, nil); err == nil {
		t.Error("accepted mismatched address count")
	}
	long := make([]byte, 300)
	if _, err := MarshalAddressed(msg, []string{string(long)}); err == nil {
		t.Error("accepted oversized address")
	}
	buf, err := MarshalAddressed(msg, []string{"127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalAddressed(buf[:len(buf)-2]); err == nil {
		t.Error("accepted truncated trailer")
	}
	if _, _, err := UnmarshalAddressed(append(buf, 0xFF)); err == nil {
		t.Error("accepted trailing bytes")
	}
}

func TestUDPAddressLearning(t *testing.T) {
	// Three endpoints; C starts knowing only B. A gossips its own id plus
	// C's id to B with addresses attached; then B gossips [B, A] to C, and
	// C must learn A's address both ways.
	received := func() (chan protocol.Message, func(protocol.Message)) {
		ch := make(chan protocol.Message, 16)
		return ch, func(m protocol.Message) { ch <- m }
	}
	chA, hA := received()
	a, err := NewEndpoint("127.0.0.1:0", hA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	chB, hB := received()
	b, err := NewEndpoint("127.0.0.1:0", hB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	chC, hC := received()
	c, err := NewEndpoint("127.0.0.1:0", hC)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = chA
	for _, setup := range []struct {
		ep *Endpoint
		id peer.ID
	}{{a, 0}, {b, 1}, {c, 2}} {
		if err := setup.ep.EnableAddressLearning(setup.id, setup.ep.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(2, c.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// A -> B carrying [A, C]: B learns A (from source) and C (from trailer).
	if err := a.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0, 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chB:
	case <-time.After(2 * time.Second):
		t.Fatal("B received nothing")
	}
	if b.KnownPeers() < 2 || b.LearnedPeers() < 2 {
		t.Fatalf("B knows %d peers (learned %d), want >= 2 learned", b.KnownPeers(), b.LearnedPeers())
	}
	// B -> C carrying [B, A]: C learns A's address from the trailer.
	if err := b.Send(2, protocol.Message{Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1, 0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chC:
	case <-time.After(2 * time.Second):
		t.Fatal("C received nothing")
	}
	// C can now route to A directly.
	if err := c.Send(0, protocol.Message{Kind: protocol.KindGossip, From: 2, IDs: []peer.ID{2, 1}}); err != nil {
		t.Fatal(err)
	}
	if nr := c.Counters().NoRoute; nr != 0 {
		t.Errorf("C had %d unroutable sends after learning", nr)
	}
	select {
	case m := <-chA:
		if m.From != 2 {
			t.Errorf("A received %+v, want from n2", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("A never heard from C: address not learned")
	}
}

func TestEnableAddressLearningValidation(t *testing.T) {
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.EnableAddressLearning(0, ""); err == nil {
		t.Error("accepted empty advertise address")
	}
	if err := ep.EnableAddressLearning(0, "not:an:addr:x"); err == nil {
		t.Error("accepted invalid advertise address")
	}
}
