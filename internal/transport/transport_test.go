package transport

import (
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sendforget/internal/faults"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func TestCodecRoundtrip(t *testing.T) {
	tests := []protocol.Message{
		{Kind: protocol.KindGossip, From: 7, IDs: []peer.ID{7, 42}, Dup: true},
		{Kind: protocol.KindRequest, From: 0, IDs: []peer.ID{0}},
		{Kind: protocol.KindReply, From: 1000000, IDs: nil},
		{Kind: protocol.KindGossip, From: -1, IDs: []peer.ID{peer.Nil}},
	}
	for _, msg := range tests {
		buf, err := Marshal(msg)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", msg, err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if got.Kind != msg.Kind || got.From != msg.From || got.Dup != msg.Dup || len(got.IDs) != len(msg.IDs) {
			t.Fatalf("roundtrip mismatch: %+v != %+v", got, msg)
		}
		for i := range msg.IDs {
			if got.IDs[i] != msg.IDs[i] {
				t.Fatalf("id %d mismatch: %v != %v", i, got.IDs[i], msg.IDs[i])
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short datagram accepted")
	}
	msg := protocol.Message{From: 1, IDs: []peer.ID{2, 3}}
	buf, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, buf...)
	bad[0] = 0xFF // magic
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, buf...)
	bad[2] = 9 // version
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	huge := protocol.Message{IDs: make([]peer.ID, 300)}
	if _, err := Marshal(huge); err == nil {
		t.Error("oversized id list accepted")
	}
}

func TestCodecQuickRoundtrip(t *testing.T) {
	f := func(kind uint8, from int32, dup bool, rawIDs []int32) bool {
		if len(rawIDs) > maxWireIDs {
			rawIDs = rawIDs[:maxWireIDs]
		}
		ids := make([]peer.ID, len(rawIDs))
		for i, v := range rawIDs {
			ids[i] = peer.ID(v)
		}
		msg := protocol.Message{Kind: protocol.Kind(kind), From: peer.ID(from), Dup: dup, IDs: ids}
		buf, err := Marshal(msg)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if got.Kind != msg.Kind || got.From != msg.From || got.Dup != msg.Dup || len(got.IDs) != len(msg.IDs) {
			return false
		}
		for i := range msg.IDs {
			if got.IDs[i] != msg.IDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkDelivery(t *testing.T) {
	nw, err := NewNetwork(loss.None{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []protocol.Message
	nw.Register(1, func(m protocol.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	nw.Send(1, protocol.Message{From: 0, IDs: []peer.ID{0, 2}})
	nw.Send(2, protocol.Message{From: 0}) // unroutable
	c := nw.Counters()
	if c.Sent != 2 || c.Delivered != 1 || c.NoRoute != 1 || c.Lost != 0 {
		t.Errorf("counters = %+v", c)
	}
	if len(got) != 1 || got[0].From != 0 {
		t.Errorf("delivered = %+v", got)
	}
}

func TestNetworkLoss(t *testing.T) {
	nw, err := NewNetwork(loss.MustUniform(1), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	nw.Register(1, func(protocol.Message) { delivered++ })
	for i := 0; i < 100; i++ {
		nw.Send(1, protocol.Message{From: 0})
	}
	if delivered != 0 {
		t.Errorf("delivered %d messages through 100%% loss", delivered)
	}
	if c := nw.Counters(); c.Lost != 100 {
		t.Errorf("Lost = %d, want 100", c.Lost)
	}
}

func TestNetworkDeregister(t *testing.T) {
	nw, err := NewNetwork(loss.None{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(1, func(protocol.Message) {})
	nw.Register(1, nil) // departed
	nw.Send(1, protocol.Message{From: 0})
	if c := nw.Counters(); c.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", c.NoRoute)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, rng.New(1)); err == nil {
		t.Error("accepted nil loss model")
	}
	if _, err := NewNetwork(loss.None{}, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestUDPEndpointRoundtrip(t *testing.T) {
	type rx struct {
		msg protocol.Message
	}
	ch := make(chan rx, 10)
	a, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { ch <- rx{m} })
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { ch <- rx{m} })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(2, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	want := protocol.Message{Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1, 9}, Dup: true}
	if err := a.Send(2, want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if got.msg.From != 1 || len(got.msg.IDs) != 2 || got.msg.IDs[1] != 9 || !got.msg.Dup {
			t.Errorf("received %+v", got.msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not received within 2s")
	}
	if c := a.Counters(); c.Sent != 1 {
		t.Errorf("sender counters = %+v", c)
	}
	// Unknown destination is a silent drop.
	if err := a.Send(99, want); err != nil {
		t.Fatal(err)
	}
	if c := a.Counters(); c.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", c.NoRoute)
	}
}

func TestUDPEndpointBadDatagram(t *testing.T) {
	received := make(chan struct{}, 1)
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) { received <- struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	conn, err := net.Dial("udp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for ep.DecodeErrors() == 0 {
		select {
		case <-received:
			t.Fatal("garbage datagram dispatched to handler")
		case <-deadline:
			t.Fatal("decode error not recorded within 2s")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestUDPEndpointValidation(t *testing.T) {
	if _, err := NewEndpoint("127.0.0.1:0", nil); err == nil {
		t.Error("accepted nil handler")
	}
	if _, err := NewEndpoint("not-an-addr:xx", func(protocol.Message) {}); err == nil {
		t.Error("accepted invalid listen address")
	}
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.AddPeer(1, "bad:addr:xx"); err == nil {
		t.Error("accepted invalid peer address")
	}
}

func TestUDPEndpointCloseIdempotent(t *testing.T) {
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestAddressedCodecRoundtrip(t *testing.T) {
	msg := protocol.Message{Kind: protocol.KindGossip, From: 3, IDs: []peer.ID{3, 9}, Dup: true}
	addrs := []string{"127.0.0.1:7000", ""}
	buf, err := MarshalAddressed(msg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	got, gotAddrs, err := UnmarshalAddressed(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || len(got.IDs) != 2 || !got.Dup {
		t.Errorf("message = %+v", got)
	}
	if len(gotAddrs) != 2 || gotAddrs[0] != addrs[0] || gotAddrs[1] != "" {
		t.Errorf("addrs = %v, want %v", gotAddrs, addrs)
	}
	// Plain Unmarshal accepts v2 and drops the trailer.
	plain, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.From != 3 {
		t.Errorf("plain decode = %+v", plain)
	}
}

func TestAddressedCodecErrors(t *testing.T) {
	msg := protocol.Message{From: 1, IDs: []peer.ID{2}}
	if _, err := MarshalAddressed(msg, nil); err == nil {
		t.Error("accepted mismatched address count")
	}
	long := make([]byte, 300)
	if _, err := MarshalAddressed(msg, []string{string(long)}); err == nil {
		t.Error("accepted oversized address")
	}
	buf, err := MarshalAddressed(msg, []string{"127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalAddressed(buf[:len(buf)-2]); err == nil {
		t.Error("accepted truncated trailer")
	}
	if _, _, err := UnmarshalAddressed(append(buf, 0xFF)); err == nil {
		t.Error("accepted trailing bytes")
	}
}

func TestUDPAddressLearning(t *testing.T) {
	// Three endpoints; C starts knowing only B. A gossips its own id plus
	// C's id to B with addresses attached; then B gossips [B, A] to C, and
	// C must learn A's address both ways.
	received := func() (chan protocol.Message, func(protocol.Message)) {
		ch := make(chan protocol.Message, 16)
		return ch, func(m protocol.Message) { ch <- m }
	}
	chA, hA := received()
	a, err := NewEndpoint("127.0.0.1:0", hA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	chB, hB := received()
	b, err := NewEndpoint("127.0.0.1:0", hB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	chC, hC := received()
	c, err := NewEndpoint("127.0.0.1:0", hC)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = chA
	for _, setup := range []struct {
		ep *Endpoint
		id peer.ID
	}{{a, 0}, {b, 1}, {c, 2}} {
		if err := setup.ep.EnableAddressLearning(setup.id, setup.ep.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(2, c.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// A -> B carrying [A, C]: B learns A (from source) and C (from trailer).
	if err := a.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0, 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chB:
	case <-time.After(2 * time.Second):
		t.Fatal("B received nothing")
	}
	if b.KnownPeers() < 2 || b.LearnedPeers() < 2 {
		t.Fatalf("B knows %d peers (learned %d), want >= 2 learned", b.KnownPeers(), b.LearnedPeers())
	}
	// B -> C carrying [B, A]: C learns A's address from the trailer.
	if err := b.Send(2, protocol.Message{Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1, 0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chC:
	case <-time.After(2 * time.Second):
		t.Fatal("C received nothing")
	}
	// C can now route to A directly.
	if err := c.Send(0, protocol.Message{Kind: protocol.KindGossip, From: 2, IDs: []peer.ID{2, 1}}); err != nil {
		t.Fatal(err)
	}
	if nr := c.Counters().NoRoute; nr != 0 {
		t.Errorf("C had %d unroutable sends after learning", nr)
	}
	select {
	case m := <-chA:
		if m.From != 2 {
			t.Errorf("A received %+v, want from n2", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("A never heard from C: address not learned")
	}
}

func TestEnableAddressLearningValidation(t *testing.T) {
	ep, err := NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.EnableAddressLearning(0, ""); err == nil {
		t.Error("accepted empty advertise address")
	}
	if err := ep.EnableAddressLearning(0, "not:an:addr:x"); err == nil {
		t.Error("accepted invalid advertise address")
	}
}

func TestUDPRelearnAfterRejoin(t *testing.T) {
	// A node that leaves and rejoins from a new port must have its
	// directory entry refreshed at peers when its datagrams arrive from the
	// new source address. Before learn() distinguished authoritative
	// source addresses, the stale entry stuck forever and every reply went
	// to the dead port.
	chB := make(chan protocol.Message, 16)
	b, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { chB <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.EnableAddressLearning(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}

	chA1 := make(chan protocol.Message, 16)
	a1, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { chA1 <- m })
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.EnableAddressLearning(0, a1.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a1.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a1.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chB:
	case <-time.After(2 * time.Second):
		t.Fatal("B never heard A's first incarnation")
	}
	if b.LearnedPeers() != 1 || b.RefreshedPeers() != 0 {
		t.Fatalf("after first contact: learned=%d refreshed=%d, want 1/0", b.LearnedPeers(), b.RefreshedPeers())
	}
	oldAddr := a1.Addr().String()
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// Rejoin on a fresh port (guaranteed different from oldAddr since the
	// old socket's port can't be reused while we hold the new one first).
	chA2 := make(chan protocol.Message, 16)
	a2, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { chA2 <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Addr().String() == oldAddr {
		t.Skipf("OS reassigned the same ephemeral port %s; cannot exercise relearn", oldAddr)
	}
	if err := a2.EnableAddressLearning(0, a2.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a2.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a2.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chB:
	case <-time.After(2 * time.Second):
		t.Fatal("B never heard A's second incarnation")
	}
	if b.RefreshedPeers() != 1 {
		t.Fatalf("refreshed=%d, want 1 (stale directory entry not rewritten)", b.RefreshedPeers())
	}
	// B can reach the rejoined A at its new address.
	if err := b.Send(0, protocol.Message{Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-chA2:
		if m.From != 1 {
			t.Errorf("rejoined A received %+v, want from n1", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B still routed to the dead port after rejoin")
	}
}

func TestUDPTrailerCannotClobberFreshEntry(t *testing.T) {
	// Trailer addresses are second-hand gossip: they may insert unknown
	// peers but must never overwrite an existing entry. Otherwise one stale
	// trailer would undo a refresh learned from a live source address.
	chB := make(chan protocol.Message, 16)
	b, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { chB <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.EnableAddressLearning(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	chA := make(chan protocol.Message, 16)
	a, err := NewEndpoint("127.0.0.1:0", func(m protocol.Message) { chA <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.EnableAddressLearning(0, a.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// B learns A's address from the datagram source.
	if err := a.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chB:
	case <-time.After(2 * time.Second):
		t.Fatal("B never heard A")
	}
	// A gossips a bogus trailer address for itself; the fresh source-learned
	// entry must survive.
	if err := a.AddPeer(0, "127.0.0.1:1"); err == nil {
		// AddPeer for self may be rejected; the trailer path below is what
		// matters either way.
		_ = err
	}
	if err := a.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chB:
	case <-time.After(2 * time.Second):
		t.Fatal("B never heard A's second gossip")
	}
	// B can still reach A: the entry points at the live source address.
	if err := b.Send(0, protocol.Message{Kind: protocol.KindGossip, From: 1, IDs: []peer.ID{1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chA:
	case <-time.After(2 * time.Second):
		t.Fatal("B lost A's address to a stale trailer")
	}
}

func TestNetworkSentAccountingUnified(t *testing.T) {
	// Every attempt increments Sent and lands in exactly one of Lost,
	// NoRoute, Delivered — including unroutable and dropped sends.
	lm, err := loss.NewUniform(0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(lm, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	nw.Register(1, func(protocol.Message) { got++ })
	msg := protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}}
	nw.Send(1, msg) // delivered
	nw.Send(9, msg) // no route
	nw.Conditions().Partition([]peer.ID{0}, []peer.ID{1})
	nw.Send(1, msg) // partition drop
	nw.Conditions().Heal()
	c := nw.Counters()
	if c.Sent != 3 {
		t.Errorf("Sent = %d, want 3 (every attempt counted)", c.Sent)
	}
	if c.Sent != c.Lost+c.Delivered+c.NoRoute {
		t.Errorf("counter identity violated: %+v", c)
	}
	if c.PartitionDropped != 1 || c.Lost != 1 || c.NoRoute != 1 || c.Delivered != 1 || got != 1 {
		t.Errorf("counters = %+v (handled %d), want one of each", c, got)
	}
}

func TestNetworkLinkOverride(t *testing.T) {
	lm, err := loss.NewUniform(0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(lm, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(1, func(protocol.Message) {})
	nw.Register(2, func(protocol.Message) {})
	always, err := loss.NewUniform(1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Conditions().SetLinkLoss(0, 1, always)
	msg := protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}}
	for i := 0; i < 10; i++ {
		nw.Send(1, msg)
		nw.Send(2, msg)
	}
	c := nw.Counters()
	if c.LinkLost != 10 || c.Lost != 10 {
		t.Errorf("link 0->1 should drop all 10: %+v", c)
	}
	if c.Delivered != 10 {
		t.Errorf("link 0->2 should deliver all 10: %+v", c)
	}
}

func TestNetworkDelayAndReorder(t *testing.T) {
	// Jittered delay reorders messages; Advance drains in (due, enqueue)
	// order and the counter identity holds once the queue is empty.
	lm, err := loss.NewUniform(0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(lm, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Conditions().SetDelay(faults.Delay{Fixed: 1, Jitter: 3}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []peer.ID
	nw.Register(1, func(m protocol.Message) {
		mu.Lock()
		order = append(order, m.From)
		mu.Unlock()
	})
	const total = 40
	for i := 0; i < total; i++ {
		nw.Send(1, protocol.Message{Kind: protocol.KindGossip, From: peer.ID(i), IDs: []peer.ID{peer.ID(i)}})
	}
	if c := nw.Counters(); c.Delayed != total || c.Delivered != 0 {
		t.Fatalf("before drain: %+v, want all %d delayed", c, total)
	}
	if nw.Pending() != total {
		t.Fatalf("pending = %d, want %d", nw.Pending(), total)
	}
	for i := 0; i < 8 && nw.Pending() > 0; i++ {
		nw.Advance()
	}
	c := nw.Counters()
	if nw.Pending() != 0 || c.Delivered != total {
		t.Fatalf("after drain: pending=%d counters=%+v", nw.Pending(), c)
	}
	if c.Sent != c.Lost+c.Delivered+c.NoRoute {
		t.Errorf("counter identity violated after drain: %+v", c)
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("jitter 3 over 40 sends produced no reordering (suspicious for this seed)")
	}
}

func TestNetworkDelayedToDepartedIsDeadLetter(t *testing.T) {
	// Routing resolves at drain time: a message delayed toward a node that
	// deregistered while it was in flight counts as NoRoute, keeping the
	// identity exact.
	lm, err := loss.NewUniform(0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(lm, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Conditions().SetDelay(faults.Delay{Fixed: 2}); err != nil {
		t.Fatal(err)
	}
	nw.Register(1, func(protocol.Message) { t.Error("delivered to departed node") })
	nw.Send(1, protocol.Message{Kind: protocol.KindGossip, From: 0, IDs: []peer.ID{0}})
	nw.Register(1, nil) // node departs while the message is in flight
	for i := 0; i < 4; i++ {
		nw.Advance()
	}
	c := nw.Counters()
	if c.NoRoute != 1 || c.Delivered != 0 || nw.Pending() != 0 {
		t.Errorf("counters = %+v pending=%d, want the delayed message dead-lettered", c, nw.Pending())
	}
	if c.Sent != c.Lost+c.Delivered+c.NoRoute {
		t.Errorf("counter identity violated: %+v", c)
	}
}
