package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
)

// Endpoint is a UDP transport endpoint: it listens on one socket,
// dispatches decoded datagrams to a handler, and sends fire-and-forget
// datagrams to peers by address. S&F tolerates loss by design, so a lost or
// undecodable datagram is simply counted and dropped.
type Endpoint struct {
	conn    *net.UDPConn
	handler Handler

	mu         sync.Mutex
	peers      map[peer.ID]*net.UDPAddr
	counters   Counters
	decodeErrs int
	advertise  string // non-empty enables addressed (v2) gossip
	selfID     peer.ID
	learned    int
	refreshed  int

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewEndpoint opens a UDP socket on listenAddr (e.g. "127.0.0.1:0") and
// starts the receive loop. The handler runs on the receive goroutine.
func NewEndpoint(listenAddr string, handler Handler) (*Endpoint, error) {
	if handler == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", listenAddr, err)
	}
	ep := &Endpoint{
		conn:    conn,
		handler: handler,
		peers:   make(map[peer.ID]*net.UDPAddr),
		closed:  make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.receiveLoop()
	return ep, nil
}

// Addr returns the bound local address.
func (ep *Endpoint) Addr() *net.UDPAddr { return ep.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer maps a node id to a UDP address. In a deployment this directory
// comes from the join bootstrap (the seed list); S&F itself only ever needs
// id -> address resolution for ids in the local view.
func (ep *Endpoint) AddPeer(id peer.ID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %v at %q: %w", id, addr, err)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.peers[id] = ua
	return nil
}

// EnableAddressLearning switches the endpoint to addressed (version-2)
// gossip: outgoing messages carry the best-known address for every id (the
// advertise address for selfID), and incoming messages populate the
// directory — from the datagram's source address for the sender id and from
// the address trailer for payload ids. With it, a node needs only its seed
// peers' addresses; the rest of the directory builds itself, matching the
// paper's framing of ids as "IP addresses and ports".
func (ep *Endpoint) EnableAddressLearning(selfID peer.ID, advertise string) error {
	if advertise == "" {
		return fmt.Errorf("transport: empty advertise address")
	}
	if _, err := net.ResolveUDPAddr("udp", advertise); err != nil {
		return fmt.Errorf("transport: advertise %q: %w", advertise, err)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.advertise = advertise
	ep.selfID = selfID
	return nil
}

// LearnedPeers returns how many directory entries were added by address
// learning.
func (ep *Endpoint) LearnedPeers() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.learned
}

// RefreshedPeers returns how many directory entries were rewritten because a
// datagram's source address disagreed with the stored one (a peer that
// rejoined on a new port).
func (ep *Endpoint) RefreshedPeers() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.refreshed
}

// KnownPeers returns the number of directory entries.
func (ep *Endpoint) KnownPeers() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.peers)
}

// Send marshals and transmits msg to the address registered for to. An
// unknown destination counts as unroutable (the datagram is dropped, as a
// real network would for a departed node). With address learning enabled,
// the datagram carries the directory's best-known address per id.
//
// Sent counts every attempt — before marshalling and the route lookup — the
// unified semantics shared with the in-memory Network and documented on
// Counters, so metrics.Traffic is comparable across substrates.
func (ep *Endpoint) Send(to peer.ID, msg protocol.Message) error {
	ep.mu.Lock()
	ep.counters.Sent++
	var payload []byte
	var err error
	if ep.advertise != "" {
		addrs := make([]string, len(msg.IDs))
		for i, id := range msg.IDs {
			switch {
			case id == ep.selfID:
				addrs[i] = ep.advertise
			default:
				if a, ok := ep.peers[id]; ok {
					addrs[i] = a.String()
				}
			}
		}
		payload, err = MarshalAddressed(msg, addrs)
	} else {
		payload, err = Marshal(msg)
	}
	if err != nil {
		ep.mu.Unlock()
		return err
	}
	addr, ok := ep.peers[to]
	if !ok {
		ep.counters.NoRoute++
		ep.mu.Unlock()
		return nil
	}
	ep.mu.Unlock()
	_, err = ep.conn.WriteToUDP(payload, addr)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("transport: send to %v: %w", to, err)
	}
	return nil
}

// Counters returns a snapshot of the endpoint counters.
func (ep *Endpoint) Counters() Counters {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.counters
}

// DecodeErrors returns the number of undecodable datagrams received.
func (ep *Endpoint) DecodeErrors() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.decodeErrs
}

// Close shuts the socket and waits for the receive loop to exit.
func (ep *Endpoint) Close() error {
	select {
	case <-ep.closed:
		return nil
	default:
	}
	close(ep.closed)
	err := ep.conn.Close()
	ep.wg.Wait()
	return err
}

func (ep *Endpoint) receiveLoop() {
	defer ep.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, src, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-ep.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		msg, addrs, err := UnmarshalAddressed(buf[:n])
		if err != nil {
			ep.mu.Lock()
			ep.decodeErrs++
			ep.mu.Unlock()
			continue
		}
		ep.mu.Lock()
		ep.counters.Delivered++
		if ep.advertise != "" {
			// Learn the sender's address from the datagram source (which is
			// authoritative: the peer demonstrably sends from there, so a
			// disagreeing stored entry is stale and gets refreshed) and the
			// payload ids' addresses from the trailer (second-hand gossip:
			// insert-only, so a stale trailer cannot clobber a fresh entry).
			ep.learn(msg.From, src, true)
			for i, a := range addrs {
				if a == "" || i >= len(msg.IDs) {
					continue
				}
				if ua, err := net.ResolveUDPAddr("udp", a); err == nil {
					ep.learn(msg.IDs[i], ua, false)
				}
			}
		}
		ep.mu.Unlock()
		ep.handler(msg)
	}
}

// learn inserts a directory entry if absent; when authoritative, it also
// refreshes an existing entry that disagrees with addr, so a node that
// rejoins on a new port becomes reachable again instead of being stuck
// behind its pre-departure address forever. Callers hold ep.mu.
func (ep *Endpoint) learn(id peer.ID, addr *net.UDPAddr, authoritative bool) {
	if id == ep.selfID || addr == nil {
		return
	}
	old, known := ep.peers[id]
	if !known {
		ep.peers[id] = addr
		ep.learned++
		return
	}
	if authoritative && (!old.IP.Equal(addr.IP) || old.Port != addr.Port || old.Zone != addr.Zone) {
		ep.peers[id] = addr
		ep.refreshed++
	}
}
