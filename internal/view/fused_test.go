package view

import (
	"testing"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// The fused view ops (single-draw pair selection, bitmask slot location,
// combined clear/fill) exist so the batch protocol path never allocates.
// They must remain behaviorally interchangeable with the scalar reference
// ops they replace: identical state transitions where the op is
// deterministic, and matching slot distributions where it is random. These
// tests pin both halves across the occupancy edge cases — empty view, full
// view, single occupied/empty slot — and across the bitmask (s <= 64) and
// scan (s > 64) implementations.

// occupancyCases builds views covering the edge occupancies for one size.
func occupancyCases(s int) map[string]*View {
	cases := map[string]*View{
		"empty": New(s),
	}
	full := New(s)
	for i := 0; i < s; i++ {
		full.Set(i, peer.ID(i+1))
	}
	cases["full"] = full
	single := New(s)
	single.Set(s/2, peer.ID(7))
	cases["single-occupied"] = single
	almostFull := full.Clone()
	almostFull.Clear(s / 3)
	cases["single-empty"] = almostFull
	half := New(s)
	for i := 0; i < s; i += 2 {
		half.Set(i, peer.ID(i+1))
	}
	cases["half"] = half
	return cases
}

var fusedSizes = []int{2, 8, 64, 70} // 70 exercises the scan fallback

// TestClearOccupiedPairMatchesSequentialClears: for every ordered pair of
// occupied slots, the fused clear must leave exactly the state two Clear
// calls leave.
func TestClearOccupiedPairMatchesSequentialClears(t *testing.T) {
	for _, s := range fusedSizes {
		for name, base := range occupancyCases(s) {
			occ := base.OccupiedSlots()
			for _, i := range occ {
				for _, j := range occ {
					if i == j {
						continue
					}
					fused := base.Clone()
					fused.ClearOccupiedPair(i, j)
					scalar := base.Clone()
					scalar.Clear(i)
					scalar.Clear(j)
					if !fused.Equal(scalar) || fused.Outdegree() != scalar.Outdegree() {
						t.Fatalf("s=%d %s: ClearOccupiedPair(%d,%d) = %v, scalar clears = %v", s, name, i, j, fused, scalar)
					}
					if err := fused.CheckInvariants(); err != nil {
						t.Fatalf("s=%d %s: after ClearOccupiedPair(%d,%d): %v", s, name, i, j, err)
					}
				}
			}
		}
	}
}

// TestFillEmptyPairMatchesSequentialSets: for every ordered pair of empty
// slots, the fused fill must leave exactly the state two Set calls leave.
func TestFillEmptyPairMatchesSequentialSets(t *testing.T) {
	for _, s := range fusedSizes {
		for name, base := range occupancyCases(s) {
			empty := base.EmptySlots()
			for _, a := range empty {
				for _, b := range empty {
					if a == b {
						continue
					}
					fused := base.Clone()
					fused.FillEmptyPair(a, b, peer.ID(101), peer.ID(202))
					scalar := base.Clone()
					scalar.Set(a, peer.ID(101))
					scalar.Set(b, peer.ID(202))
					if !fused.Equal(scalar) || fused.Outdegree() != scalar.Outdegree() {
						t.Fatalf("s=%d %s: FillEmptyPair(%d,%d) = %v, scalar sets = %v", s, name, a, b, fused, scalar)
					}
					if err := fused.CheckInvariants(); err != nil {
						t.Fatalf("s=%d %s: after FillEmptyPair(%d,%d): %v", s, name, a, b, err)
					}
				}
			}
		}
	}
}

// checkUniform asserts that counts is consistent with a uniform draw: every
// cell within 20% of the mean (trials are sized so a correct sampler passes
// with huge margin while a biased or broken one fails deterministically).
func checkUniform(t *testing.T, what string, counts map[[2]int]int, cells, trials int) {
	t.Helper()
	if len(counts) != cells {
		t.Fatalf("%s: hit %d distinct outcomes, want %d", what, len(counts), cells)
	}
	mean := float64(trials) / float64(cells)
	for k, c := range counts {
		if d := float64(c)/mean - 1; d > 0.2 || d < -0.2 {
			t.Errorf("%s: outcome %v frequency off by %.0f%% (count %d, mean %.0f)", what, k, d*100, c, mean)
		}
	}
}

// TestRandomPairFastMatchesRandomPairDistribution: both pair selectors must
// be uniform over ordered distinct slot pairs (the scalar one is the
// Figure 5.1 reference; the fast one trades the draw mapping for a single
// 64-bit draw).
func TestRandomPairFastMatchesRandomPairDistribution(t *testing.T) {
	const trials = 200000
	for _, s := range []int{2, 5, 8} {
		v := New(s)
		cells := s * (s - 1)
		scalar := map[[2]int]int{}
		fast := map[[2]int]int{}
		r1, r2 := rng.New(1001), rng.New(2002)
		for n := 0; n < trials; n++ {
			i, j := v.RandomPair(r1)
			scalar[[2]int{i, j}]++
			i, j = v.RandomPairFast(r2)
			fast[[2]int{i, j}]++
		}
		checkUniform(t, "RandomPair", scalar, cells, trials)
		checkUniform(t, "RandomPairFast", fast, cells, trials)
	}
}

// TestRandomEmptyPairMatchesScalarDistribution: the fused empty-pair draw
// must hit exactly the ordered distinct empty pairs, uniformly — the same
// support and distribution as RandomEmptySlots(r, 2).
func TestRandomEmptyPairMatchesScalarDistribution(t *testing.T) {
	const trials = 120000
	for _, s := range []int{8, 70} {
		for name, base := range occupancyCases(s) {
			e := s - base.Outdegree()
			if e < 2 || e > 6 {
				continue // keep the cell count small enough to sample
			}
			cells := e * (e - 1)
			scalar := map[[2]int]int{}
			fused := map[[2]int]int{}
			r1, r2 := rng.New(31), rng.New(41)
			for n := 0; n < trials; n++ {
				slots, ok := base.RandomEmptySlots(r1, 2)
				if !ok {
					t.Fatalf("s=%d %s: RandomEmptySlots failed with %d empties", s, name, e)
				}
				scalar[[2]int{slots[0], slots[1]}]++
				a, b, ok := base.RandomEmptyPair(r2)
				if !ok {
					t.Fatalf("s=%d %s: RandomEmptyPair failed with %d empties", s, name, e)
				}
				fused[[2]int{a, b}]++
			}
			checkUniform(t, "RandomEmptySlots(2)", scalar, cells, trials)
			checkUniform(t, "RandomEmptyPair", fused, cells, trials)
		}
	}
}

// TestRandomSingleSlotSelectors covers the k=1 forms: RandomEmptySlot vs
// RandomEmptySlots(r, 1) and RandomOccupiedSlot vs indexing OccupiedSlots,
// on the same support with the same uniform law.
func TestRandomSingleSlotSelectors(t *testing.T) {
	const trials = 60000
	for _, s := range []int{8, 70} {
		for name, base := range occupancyCases(s) {
			empty, occ := base.EmptySlots(), base.OccupiedSlots()
			r1, r2 := rng.New(7), rng.New(11)
			if len(empty) > 0 && len(empty) <= 6 {
				scalar, fused := map[[2]int]int{}, map[[2]int]int{}
				for n := 0; n < trials; n++ {
					slots, ok := base.RandomEmptySlots(r1, 1)
					if !ok {
						t.Fatalf("s=%d %s: RandomEmptySlots(1) failed", s, name)
					}
					scalar[[2]int{slots[0]}]++
					i, ok := base.RandomEmptySlot(r2)
					if !ok {
						t.Fatalf("s=%d %s: RandomEmptySlot failed", s, name)
					}
					fused[[2]int{i}]++
				}
				checkUniform(t, "RandomEmptySlots(1)", scalar, len(empty), trials)
				checkUniform(t, "RandomEmptySlot", fused, len(empty), trials)
			}
			if len(occ) > 0 && len(occ) <= 6 {
				scalar, fused := map[[2]int]int{}, map[[2]int]int{}
				for n := 0; n < trials; n++ {
					scalar[[2]int{occ[r1.Intn(len(occ))]}]++
					i, ok := base.RandomOccupiedSlot(r2)
					if !ok {
						t.Fatalf("s=%d %s: RandomOccupiedSlot failed", s, name)
					}
					fused[[2]int{i}]++
				}
				checkUniform(t, "scalar occupied pick", scalar, len(occ), trials)
				checkUniform(t, "RandomOccupiedSlot", fused, len(occ), trials)
			}
		}
	}
}

// TestRandomOccupiedPairMatchesChooseDistribution: shuffle's fused
// swap-segment selection must match the scalar Choose-over-OccupiedSlots
// reference — uniform over ordered distinct occupied pairs.
func TestRandomOccupiedPairMatchesChooseDistribution(t *testing.T) {
	const trials = 120000
	for _, s := range []int{8, 70} {
		for name, base := range occupancyCases(s) {
			occ := base.OccupiedSlots()
			if len(occ) < 2 || len(occ) > 6 {
				continue
			}
			cells := len(occ) * (len(occ) - 1)
			scalar, fused := map[[2]int]int{}, map[[2]int]int{}
			r1, r2 := rng.New(13), rng.New(17)
			for n := 0; n < trials; n++ {
				pick := r1.Choose(len(occ), 2)
				scalar[[2]int{occ[pick[0]], occ[pick[1]]}]++
				i, j, ok := base.RandomOccupiedPair(r2)
				if !ok {
					t.Fatalf("s=%d %s: RandomOccupiedPair failed with %d occupied", s, name, len(occ))
				}
				fused[[2]int{i, j}]++
			}
			checkUniform(t, "Choose over occupied", scalar, cells, trials)
			checkUniform(t, "RandomOccupiedPair", fused, cells, trials)
		}
	}
}

// TestReplaceRandomOccupiedMatchesScalarSequence: the fused pointer flip
// must induce the same distribution over (detached id, resulting view) as
// the scalar OccupiedSlots / Clear / RandomEmptySlots / Set sequence
// flipper's classic receive step performs.
func TestReplaceRandomOccupiedMatchesScalarSequence(t *testing.T) {
	const trials = 120000
	base := New(6)
	base.Set(0, peer.ID(1))
	base.Set(2, peer.ID(2))
	base.Set(5, peer.ID(3))
	const w = peer.ID(99)
	scalar, fused := map[string]int{}, map[string]int{}
	r1, r2 := rng.New(19), rng.New(23)
	for n := 0; n < trials; n++ {
		v := base.Clone()
		occ := v.OccupiedSlots()
		slot := occ[r1.Intn(len(occ))]
		z := v.Slot(slot)
		v.Clear(slot)
		stores, ok := v.RandomEmptySlots(r1, 1)
		if !ok {
			t.Fatal("scalar store failed")
		}
		v.Set(stores[0], w)
		scalar[z.String()+"|"+v.String()]++

		v = base.Clone()
		z, ok = v.ReplaceRandomOccupied(r2, w)
		if !ok {
			t.Fatal("ReplaceRandomOccupied failed on non-empty view")
		}
		fused[z.String()+"|"+v.String()]++
		if err := v.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if len(scalar) != len(fused) {
		t.Fatalf("support differs: scalar %d outcomes, fused %d", len(scalar), len(fused))
	}
	for k, sc := range scalar {
		fc, ok := fused[k]
		if !ok {
			t.Fatalf("outcome %q reached by scalar sequence but never by fused op", k)
		}
		if d := float64(fc)/float64(sc) - 1; d > 0.2 || d < -0.2 {
			t.Errorf("outcome %q frequency differs by %.0f%% (scalar %d, fused %d)", k, d*100, sc, fc)
		}
	}
}

// TestFusedSelectorsEdgeOccupancy pins the failure returns: selectors over
// empty support must return ok = false and leave the view untouched.
func TestFusedSelectorsEdgeOccupancy(t *testing.T) {
	r := rng.New(3)
	for _, s := range fusedSizes {
		empty := New(s)
		if _, ok := empty.RandomOccupiedSlot(r); ok {
			t.Errorf("s=%d: RandomOccupiedSlot succeeded on an empty view", s)
		}
		if _, _, ok := empty.RandomOccupiedPair(r); ok {
			t.Errorf("s=%d: RandomOccupiedPair succeeded on an empty view", s)
		}
		if z, ok := empty.ReplaceRandomOccupied(r, peer.ID(9)); ok || z != peer.Nil {
			t.Errorf("s=%d: ReplaceRandomOccupied replaced in an empty view", s)
		}
		if empty.Outdegree() != 0 {
			t.Errorf("s=%d: failed ReplaceRandomOccupied mutated the view", s)
		}

		full := New(s)
		for i := 0; i < s; i++ {
			full.Set(i, peer.ID(i+1))
		}
		if _, ok := full.RandomEmptySlot(r); ok {
			t.Errorf("s=%d: RandomEmptySlot succeeded on a full view", s)
		}
		if _, _, ok := full.RandomEmptyPair(r); ok {
			t.Errorf("s=%d: RandomEmptyPair succeeded on a full view", s)
		}

		single := New(s)
		single.Set(0, peer.ID(5))
		if i, ok := single.RandomOccupiedSlot(r); !ok || i != 0 {
			t.Errorf("s=%d: RandomOccupiedSlot on single-occupied = (%d, %v), want (0, true)", s, i, ok)
		}
		if _, _, ok := single.RandomOccupiedPair(r); ok {
			t.Errorf("s=%d: RandomOccupiedPair succeeded with one occupied slot", s)
		}
		if z, ok := single.ReplaceRandomOccupied(r, peer.ID(6)); !ok || z != peer.ID(5) {
			t.Errorf("s=%d: ReplaceRandomOccupied on single-occupied = (%v, %v), want (n5, true)", s, z, ok)
		}
		if single.Outdegree() != 1 || !single.Contains(peer.ID(6)) || single.Contains(peer.ID(5)) {
			t.Errorf("s=%d: ReplaceRandomOccupied left wrong state %v", s, single)
		}
	}
}
