// Package view implements the local view u.lv[1..s] of Section 2 of the
// paper: a fixed-size array of node ids in which entries may be empty (the
// bottom symbol) and duplicates are permitted (they are accounted for later
// as dependencies).
//
// The view exposes exactly the primitive steps the S&F protocol of
// Figure 5.1 is built from: selecting a uniform random ordered pair of
// entries, clearing entries, and filling uniformly chosen empty entries.
// Higher-level invariants (even outdegree, the dL lower bound) belong to the
// protocol, not the container, and are asserted there.
package view

import (
	"fmt"
	"strings"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// View is a local membership view: s slots each holding a node id or
// peer.Nil. The zero value is unusable; construct with New.
type View struct {
	slots []peer.ID
	out   int // cached count of non-Nil slots (the outdegree d(u))
}

// New returns an empty view with s slots. It panics if s <= 0.
func New(s int) *View {
	if s <= 0 {
		panic("view: New called with non-positive size")
	}
	v := &View{slots: make([]peer.ID, s)}
	for i := range v.slots {
		v.slots[i] = peer.Nil
	}
	return v
}

// Size returns the number of slots s (Property M1's view size).
func (v *View) Size() int { return len(v.slots) }

// Outdegree returns d(u): the number of non-empty entries.
func (v *View) Outdegree() int { return v.out }

// Full reports whether the view has no empty entries (d(u) = s).
func (v *View) Full() bool { return v.out == len(v.slots) }

// Slot returns the id stored at index i (peer.Nil if empty).
func (v *View) Slot(i int) peer.ID { return v.slots[i] }

// Set stores id at index i, overwriting any previous value. Storing peer.Nil
// is equivalent to Clear.
func (v *View) Set(i int, id peer.ID) {
	if v.slots[i] != peer.Nil {
		v.out--
	}
	v.slots[i] = id
	if id != peer.Nil {
		v.out++
	}
}

// Clear empties slot i. Clearing an already-empty slot is a no-op.
func (v *View) Clear(i int) { v.Set(i, peer.Nil) }

// RandomPair selects an ordered pair of distinct slot indices uniformly at
// random — Figure 5.1 line 2. The slots may be empty; the S&F initiate step
// turns an empty selection into a self-loop transformation.
func (v *View) RandomPair(r *rng.RNG) (i, j int) {
	return r.Pair(len(v.slots))
}

// RandomEmptySlots returns k distinct uniformly chosen empty slot indices —
// the receive step of Figure 5.1 (lines 3-4) uses k = 2. It returns false if
// fewer than k slots are empty.
func (v *View) RandomEmptySlots(r *rng.RNG, k int) ([]int, bool) {
	empty := v.EmptySlots()
	if len(empty) < k {
		return nil, false
	}
	pick := r.Choose(len(empty), k)
	out := make([]int, k)
	for idx, p := range pick {
		out[idx] = empty[p]
	}
	return out, true
}

// EmptySlots returns the indices of all empty slots in ascending order.
func (v *View) EmptySlots() []int {
	out := make([]int, 0, len(v.slots)-v.out)
	for i, id := range v.slots {
		if id == peer.Nil {
			out = append(out, i)
		}
	}
	return out
}

// OccupiedSlots returns the indices of all non-empty slots in ascending
// order.
func (v *View) OccupiedSlots() []int {
	out := make([]int, 0, v.out)
	for i, id := range v.slots {
		if id != peer.Nil {
			out = append(out, i)
		}
	}
	return out
}

// IDs returns the multiset of non-empty entries in slot order. The returned
// slice is freshly allocated.
func (v *View) IDs() []peer.ID {
	out := make([]peer.ID, 0, v.out)
	for _, id := range v.slots {
		if id != peer.Nil {
			out = append(out, id)
		}
	}
	return out
}

// Contains reports whether id appears in some entry.
func (v *View) Contains(id peer.ID) bool { return v.Multiplicity(id) > 0 }

// Multiplicity returns the number of entries holding id (views are
// multisets; duplicates count as dependencies in the analysis).
func (v *View) Multiplicity(id peer.ID) int {
	if id == peer.Nil {
		return 0
	}
	m := 0
	for _, e := range v.slots {
		if e == id {
			m++
		}
	}
	return m
}

// SlotsOf returns the indices of all entries holding id, ascending.
func (v *View) SlotsOf(id peer.ID) []int {
	var out []int
	for i, e := range v.slots {
		if e == id {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the view.
func (v *View) Clone() *View {
	c := &View{slots: make([]peer.ID, len(v.slots)), out: v.out}
	copy(c.slots, v.slots)
	return c
}

// Equal reports whether two views have identical slot contents (including
// slot positions, not just multisets).
func (v *View) Equal(o *View) bool {
	if len(v.slots) != len(o.slots) {
		return false
	}
	for i := range v.slots {
		if v.slots[i] != o.slots[i] {
			return false
		}
	}
	return true
}

// String renders the view compactly, e.g. "[n1 ⊥ n3 n3]".
func (v *View) String() string {
	parts := make([]string, len(v.slots))
	for i, id := range v.slots {
		parts[i] = id.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// CheckInvariants verifies internal consistency (cached outdegree matches
// the slot contents). It returns an error rather than panicking so tests can
// assert on it; protocol code calls it only under test builds.
func (v *View) CheckInvariants() error {
	n := 0
	for _, id := range v.slots {
		if id != peer.Nil {
			n++
		}
	}
	if n != v.out {
		return fmt.Errorf("view: cached outdegree %d != actual %d", v.out, n)
	}
	return nil
}
