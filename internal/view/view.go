// Package view implements the local view u.lv[1..s] of Section 2 of the
// paper: a fixed-size array of node ids in which entries may be empty (the
// bottom symbol) and duplicates are permitted (they are accounted for later
// as dependencies).
//
// The view exposes exactly the primitive steps the S&F protocol of
// Figure 5.1 is built from: selecting a uniform random ordered pair of
// entries, clearing entries, and filling uniformly chosen empty entries.
// Higher-level invariants (even outdegree, the dL lower bound) belong to the
// protocol, not the container, and are asserted there.
package view

import (
	"fmt"
	"math/bits"
	"strings"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// View is a local membership view: s slots each holding a node id or
// peer.Nil. The zero value is unusable; construct with New.
type View struct {
	slots []peer.ID
	out   int // cached count of non-Nil slots (the outdegree d(u))
	// occ is a bitmask of the occupied slots among the first 64 (bit i set
	// iff slots[i] != peer.Nil). For the view sizes the paper works with
	// (s <= 64) it covers the whole view, and the batched receive path
	// selects random empty slots with a few bit operations instead of a
	// slot scan. For larger views it is maintained for the covered prefix
	// but never consulted.
	occ uint64
}

// New returns an empty view with s slots. It panics if s <= 0.
func New(s int) *View {
	if s <= 0 {
		panic("view: New called with non-positive size")
	}
	v := &View{slots: make([]peer.ID, s)}
	for i := range v.slots {
		v.slots[i] = peer.Nil
	}
	return v
}

// Wrap returns a View backed by the given slot slice without copying it: the
// view and the caller share the array. The sharded cluster stores all node
// views in one flat id array and wraps per-node windows of it, so view state
// stays contiguous in memory and snapshot code can copy it in bulk. The
// outdegree cache is computed once here; all mutation must go through the
// View afterwards. It panics if slots is empty.
func Wrap(slots []peer.ID) View {
	if len(slots) == 0 {
		panic("view: Wrap called with no slots")
	}
	out := 0
	var occ uint64
	for i, id := range slots {
		if id != peer.Nil {
			out++
			if i < 64 {
				occ |= 1 << uint(i)
			}
		}
	}
	return View{slots: slots, out: out, occ: occ}
}

// Size returns the number of slots s (Property M1's view size).
func (v *View) Size() int { return len(v.slots) }

// Outdegree returns d(u): the number of non-empty entries.
func (v *View) Outdegree() int { return v.out }

// Full reports whether the view has no empty entries (d(u) = s).
func (v *View) Full() bool { return v.out == len(v.slots) }

// Slot returns the id stored at index i (peer.Nil if empty).
func (v *View) Slot(i int) peer.ID { return v.slots[i] }

// Set stores id at index i, overwriting any previous value. Storing peer.Nil
// is equivalent to Clear.
func (v *View) Set(i int, id peer.ID) {
	if v.slots[i] != peer.Nil {
		v.out--
	}
	v.slots[i] = id
	if id != peer.Nil {
		v.out++
		if i < 64 {
			v.occ |= 1 << uint(i)
		}
	} else if i < 64 {
		v.occ &^= 1 << uint(i)
	}
}

// Clear empties slot i. Clearing an already-empty slot is a no-op.
func (v *View) Clear(i int) { v.Set(i, peer.Nil) }

// RandomPair selects an ordered pair of distinct slot indices uniformly at
// random — Figure 5.1 line 2. The slots may be empty; the S&F initiate step
// turns an empty selection into a self-loop transformation.
func (v *View) RandomPair(r *rng.RNG) (i, j int) {
	return r.Pair(len(v.slots))
}

// RandomEmptySlots returns k distinct uniformly chosen empty slot indices —
// the receive step of Figure 5.1 (lines 3-4) uses k = 2. It returns false if
// fewer than k slots are empty.
func (v *View) RandomEmptySlots(r *rng.RNG, k int) ([]int, bool) {
	empty := v.EmptySlots()
	if len(empty) < k {
		return nil, false
	}
	pick := r.Choose(len(empty), k)
	out := make([]int, k)
	for idx, p := range pick {
		out[idx] = empty[p]
	}
	return out, true
}

// RandomPairFast is RandomPair through rng.FastPair: one 64-bit draw
// instead of two, with the (documented, negligible) lane bias and a
// different draw mapping. Batch step cores use it; the classic cores keep
// RandomPair so their seeded streams are unchanged.
//
//vet:hotpath
func (v *View) RandomPairFast(r *rng.RNG) (i, j int) {
	return r.FastPair(len(v.slots))
}

// RandomEmptyPair returns an ordered pair of distinct uniformly chosen empty
// slot indices without allocating — the hot-path form of
// RandomEmptySlots(r, 2) used by the sharded cluster's batched receive path.
// The pair distribution matches RandomEmptySlots' (uniform over ordered
// distinct empty slots up to rng.FastPair's negligible lane bias), but the
// RNG draw mapping differs, so the two forms are not stream-compatible under
// a shared seed. It returns ok = false when fewer than two slots are empty.
//
//vet:hotpath
func (v *View) RandomEmptyPair(r *rng.RNG) (a, b int, ok bool) {
	s := len(v.slots)
	e := s - v.out
	if e < 2 {
		return 0, 0, false
	}
	// Draw ordinal positions among the empty slots (ordered distinct pair),
	// then locate both.
	x, y := r.FastPair(e)
	if s <= 64 {
		// The occupancy mask covers the whole view: select the x-th and
		// y-th zero bits instead of scanning slots.
		mask := ^uint64(0)
		if s < 64 {
			mask = 1<<uint(s) - 1
		}
		zeros := ^v.occ & mask
		return nthSetBit(zeros, x), nthSetBit(zeros, y), true
	}
	a, b = -1, -1
	k := 0
	for i, id := range v.slots {
		if id != peer.Nil {
			continue
		}
		if k == x {
			a = i
		}
		if k == y {
			b = i
		}
		k++
		if a >= 0 && b >= 0 {
			break
		}
	}
	return a, b, true
}

// FillEmptyPair stores two non-Nil ids at the distinct empty slots a and b —
// the receive step's two Set calls fused so the occupancy bookkeeping runs
// once without re-reading the slots. Callers guarantee a != b and that both
// slots are empty (RandomEmptyPair's contract); Nil ids fall back to Set,
// which handles them like Clear.
//
//vet:hotpath
func (v *View) FillEmptyPair(a, b int, ida, idb peer.ID) {
	if ida == peer.Nil || idb == peer.Nil {
		v.Set(a, ida)
		v.Set(b, idb)
		return
	}
	v.slots[a] = ida
	v.slots[b] = idb
	v.out += 2
	var m uint64
	if a < 64 {
		m |= 1 << uint(a)
	}
	if b < 64 {
		m |= 1 << uint(b)
	}
	v.occ |= m
}

// ClearOccupiedPair empties the distinct slots i and j — the initiate step's
// two Clear calls fused. Callers guarantee i != j and that both slots are
// occupied (the initiate step just read both ids and found them non-Nil).
//
//vet:hotpath
func (v *View) ClearOccupiedPair(i, j int) {
	v.slots[i] = peer.Nil
	v.slots[j] = peer.Nil
	v.out -= 2
	var m uint64
	if i < 64 {
		m |= 1 << uint(i)
	}
	if j < 64 {
		m |= 1 << uint(j)
	}
	v.occ &^= m
}

// RandomEmptySlot returns one uniformly chosen empty slot index without
// allocating — the hot-path form of RandomEmptySlots(r, 1) used by batch
// receive steps that store ids one at a time. The slot distribution matches
// RandomEmptySlots', but the RNG draw mapping differs (one Intn draw instead
// of a Choose permutation step), so the two forms are not stream-compatible
// under a shared seed. It returns ok = false when the view is full.
//
//vet:hotpath
func (v *View) RandomEmptySlot(r *rng.RNG) (int, bool) {
	s := len(v.slots)
	e := s - v.out
	if e == 0 {
		return 0, false
	}
	x := r.Intn(e)
	if s <= 64 {
		mask := ^uint64(0)
		if s < 64 {
			mask = 1<<uint(s) - 1
		}
		return nthSetBit(^v.occ&mask, x), true
	}
	k := 0
	for i, id := range v.slots {
		if id != peer.Nil {
			continue
		}
		if k == x {
			return i, true
		}
		k++
	}
	return 0, false // unreachable: e > 0
}

// RandomOccupiedSlot returns one uniformly chosen occupied slot index
// without allocating — the fused form of indexing OccupiedSlots() with
// r.Intn, used by batch receive steps (flipper's pointer flip, shuffle's
// single-entry swap). It returns ok = false when the view is empty.
//
//vet:hotpath
func (v *View) RandomOccupiedSlot(r *rng.RNG) (int, bool) {
	if v.out == 0 {
		return 0, false
	}
	x := r.Intn(v.out)
	s := len(v.slots)
	if s <= 64 {
		return nthSetBit(v.occ, x), true
	}
	k := 0
	for i, id := range v.slots {
		if id == peer.Nil {
			continue
		}
		if k == x {
			return i, true
		}
		k++
	}
	return 0, false // unreachable: out > 0
}

// RandomOccupiedPair returns an ordered pair of distinct uniformly chosen
// occupied slot indices without allocating — shuffle's swap-segment
// selection (pick the entries to offer) fused the way RandomEmptyPair fuses
// the receive fill. The pair distribution is uniform over ordered distinct
// occupied slots up to rng.FastPair's negligible lane bias; the draw mapping
// differs from the scalar Choose path. It returns ok = false when fewer than
// two slots are occupied.
//
//vet:hotpath
func (v *View) RandomOccupiedPair(r *rng.RNG) (a, b int, ok bool) {
	if v.out < 2 {
		return 0, 0, false
	}
	x, y := r.FastPair(v.out)
	s := len(v.slots)
	if s <= 64 {
		return nthSetBit(v.occ, x), nthSetBit(v.occ, y), true
	}
	a, b = -1, -1
	k := 0
	for i, id := range v.slots {
		if id == peer.Nil {
			continue
		}
		if k == x {
			a = i
		}
		if k == y {
			b = i
		}
		k++
		if a >= 0 && b >= 0 {
			break
		}
	}
	return a, b, true
}

// ReplaceRandomOccupied is flipper's pointer flip fused into one view op:
// detach a uniformly chosen occupied entry z, then store w into a uniformly
// chosen empty slot of the resulting view (which always has at least the
// just-cleared slot empty). It returns the detached id and ok = true, or
// ok = false when the view is empty and nothing was replaced. The slot
// distribution matches the scalar OccupiedSlots/Clear/RandomEmptySlots
// sequence; only the RNG draw mapping differs.
//
//vet:hotpath
func (v *View) ReplaceRandomOccupied(r *rng.RNG, w peer.ID) (z peer.ID, ok bool) {
	i, ok := v.RandomOccupiedSlot(r)
	if !ok {
		return peer.Nil, false
	}
	z = v.slots[i]
	v.Clear(i)
	j, _ := v.RandomEmptySlot(r) // cannot fail: slot i is now empty
	v.Set(j, w)
	return z, true
}

// nthSetBit returns the index of the (k+1)-th set bit of m (k counted from
// 0, bits from the least significant). The caller guarantees m has more than
// k bits set.
func nthSetBit(m uint64, k int) int {
	for ; k > 0; k-- {
		m &= m - 1
	}
	return bits.TrailingZeros64(m)
}

// EmptySlots returns the indices of all empty slots in ascending order.
func (v *View) EmptySlots() []int {
	out := make([]int, 0, len(v.slots)-v.out)
	for i, id := range v.slots {
		if id == peer.Nil {
			out = append(out, i)
		}
	}
	return out
}

// OccupiedSlots returns the indices of all non-empty slots in ascending
// order.
func (v *View) OccupiedSlots() []int {
	out := make([]int, 0, v.out)
	for i, id := range v.slots {
		if id != peer.Nil {
			out = append(out, i)
		}
	}
	return out
}

// IDs returns the multiset of non-empty entries in slot order. The returned
// slice is freshly allocated.
func (v *View) IDs() []peer.ID {
	out := make([]peer.ID, 0, v.out)
	for _, id := range v.slots {
		if id != peer.Nil {
			out = append(out, id)
		}
	}
	return out
}

// Contains reports whether id appears in some entry.
func (v *View) Contains(id peer.ID) bool { return v.Multiplicity(id) > 0 }

// Multiplicity returns the number of entries holding id (views are
// multisets; duplicates count as dependencies in the analysis).
func (v *View) Multiplicity(id peer.ID) int {
	if id == peer.Nil {
		return 0
	}
	m := 0
	for _, e := range v.slots {
		if e == id {
			m++
		}
	}
	return m
}

// SlotsOf returns the indices of all entries holding id, ascending.
func (v *View) SlotsOf(id peer.ID) []int {
	var out []int
	for i, e := range v.slots {
		if e == id {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the view.
func (v *View) Clone() *View {
	c := &View{slots: make([]peer.ID, len(v.slots)), out: v.out, occ: v.occ}
	copy(c.slots, v.slots)
	return c
}

// Equal reports whether two views have identical slot contents (including
// slot positions, not just multisets).
func (v *View) Equal(o *View) bool {
	if len(v.slots) != len(o.slots) {
		return false
	}
	for i := range v.slots {
		if v.slots[i] != o.slots[i] {
			return false
		}
	}
	return true
}

// String renders the view compactly, e.g. "[n1 ⊥ n3 n3]".
func (v *View) String() string {
	parts := make([]string, len(v.slots))
	for i, id := range v.slots {
		parts[i] = id.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// CheckInvariants verifies internal consistency (cached outdegree and
// occupancy mask match the slot contents). It returns an error rather than
// panicking so tests can assert on it; protocol code calls it only under
// test builds.
func (v *View) CheckInvariants() error {
	n := 0
	var occ uint64
	for i, id := range v.slots {
		if id != peer.Nil {
			n++
			if i < 64 {
				occ |= 1 << uint(i)
			}
		}
	}
	if n != v.out {
		return fmt.Errorf("view: cached outdegree %d != actual %d", v.out, n)
	}
	if occ != v.occ {
		return fmt.Errorf("view: cached occupancy %064b != actual %064b", v.occ, occ)
	}
	return nil
}
