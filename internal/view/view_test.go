package view

import (
	"testing"
	"testing/quick"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

func TestNewEmpty(t *testing.T) {
	v := New(6)
	if v.Size() != 6 {
		t.Fatalf("Size = %d, want 6", v.Size())
	}
	if v.Outdegree() != 0 {
		t.Fatalf("Outdegree of fresh view = %d, want 0", v.Outdegree())
	}
	if v.Full() {
		t.Error("fresh view reports Full")
	}
	for i := 0; i < 6; i++ {
		if !v.Slot(i).IsNil() {
			t.Errorf("slot %d of fresh view = %v, want Nil", i, v.Slot(i))
		}
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSetClearOutdegree(t *testing.T) {
	v := New(4)
	v.Set(0, 10)
	v.Set(2, 11)
	if v.Outdegree() != 2 {
		t.Fatalf("Outdegree = %d, want 2", v.Outdegree())
	}
	v.Set(0, 12) // overwrite occupied slot: degree unchanged
	if v.Outdegree() != 2 {
		t.Fatalf("Outdegree after overwrite = %d, want 2", v.Outdegree())
	}
	v.Clear(0)
	if v.Outdegree() != 1 {
		t.Fatalf("Outdegree after clear = %d, want 1", v.Outdegree())
	}
	v.Clear(0) // double clear is a no-op
	if v.Outdegree() != 1 {
		t.Fatalf("Outdegree after double clear = %d, want 1", v.Outdegree())
	}
	v.Set(1, peer.Nil) // Set(Nil) behaves as Clear
	if v.Outdegree() != 1 {
		t.Fatalf("Outdegree after Set(Nil) = %d, want 1", v.Outdegree())
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFull(t *testing.T) {
	v := New(2)
	v.Set(0, 1)
	v.Set(1, 2)
	if !v.Full() {
		t.Error("view with all slots occupied does not report Full")
	}
}

func TestEmptyAndOccupiedSlots(t *testing.T) {
	v := New(5)
	v.Set(1, 7)
	v.Set(3, 8)
	gotEmpty := v.EmptySlots()
	wantEmpty := []int{0, 2, 4}
	if len(gotEmpty) != len(wantEmpty) {
		t.Fatalf("EmptySlots = %v, want %v", gotEmpty, wantEmpty)
	}
	for i := range wantEmpty {
		if gotEmpty[i] != wantEmpty[i] {
			t.Fatalf("EmptySlots = %v, want %v", gotEmpty, wantEmpty)
		}
	}
	gotOcc := v.OccupiedSlots()
	wantOcc := []int{1, 3}
	if len(gotOcc) != len(wantOcc) {
		t.Fatalf("OccupiedSlots = %v, want %v", gotOcc, wantOcc)
	}
	for i := range wantOcc {
		if gotOcc[i] != wantOcc[i] {
			t.Fatalf("OccupiedSlots = %v, want %v", gotOcc, wantOcc)
		}
	}
}

func TestIDsAndMultiplicity(t *testing.T) {
	v := New(5)
	v.Set(0, 3)
	v.Set(2, 3)
	v.Set(4, 9)
	ids := v.IDs()
	if len(ids) != 3 {
		t.Fatalf("IDs length = %d, want 3", len(ids))
	}
	if v.Multiplicity(3) != 2 {
		t.Errorf("Multiplicity(3) = %d, want 2", v.Multiplicity(3))
	}
	if v.Multiplicity(9) != 1 {
		t.Errorf("Multiplicity(9) = %d, want 1", v.Multiplicity(9))
	}
	if v.Multiplicity(1) != 0 {
		t.Errorf("Multiplicity(1) = %d, want 0", v.Multiplicity(1))
	}
	if v.Multiplicity(peer.Nil) != 0 {
		t.Errorf("Multiplicity(Nil) = %d, want 0", v.Multiplicity(peer.Nil))
	}
	if !v.Contains(3) || v.Contains(1) {
		t.Error("Contains gave wrong answers")
	}
	slots := v.SlotsOf(3)
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 2 {
		t.Errorf("SlotsOf(3) = %v, want [0 2]", slots)
	}
}

func TestRandomPairDistinctSlots(t *testing.T) {
	v := New(6)
	r := rng.New(1)
	for k := 0; k < 1000; k++ {
		i, j := v.RandomPair(r)
		if i == j || i < 0 || j < 0 || i >= 6 || j >= 6 {
			t.Fatalf("RandomPair = (%d,%d) invalid", i, j)
		}
	}
}

func TestRandomEmptySlots(t *testing.T) {
	v := New(6)
	v.Set(0, 1)
	v.Set(1, 2)
	v.Set(2, 3)
	v.Set(3, 4)
	r := rng.New(2)
	for k := 0; k < 200; k++ {
		slots, ok := v.RandomEmptySlots(r, 2)
		if !ok {
			t.Fatal("RandomEmptySlots reported insufficient space with 2 empties")
		}
		if len(slots) != 2 || slots[0] == slots[1] {
			t.Fatalf("RandomEmptySlots = %v invalid", slots)
		}
		for _, s := range slots {
			if s != 4 && s != 5 {
				t.Fatalf("RandomEmptySlots chose occupied slot %d", s)
			}
		}
	}
	v.Set(4, 5)
	if _, ok := v.RandomEmptySlots(r, 2); ok {
		t.Error("RandomEmptySlots succeeded with only one empty slot")
	}
	// k = 1 should still work with one empty slot.
	slots, ok := v.RandomEmptySlots(r, 1)
	if !ok || len(slots) != 1 || slots[0] != 5 {
		t.Errorf("RandomEmptySlots(_, 1) = %v, %v; want [5], true", slots, ok)
	}
}

func TestCloneAndEqual(t *testing.T) {
	v := New(4)
	v.Set(0, 1)
	v.Set(3, 2)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c.Set(1, 9)
	if v.Equal(c) {
		t.Fatal("mutating clone affected Equal comparison")
	}
	if v.Contains(9) {
		t.Fatal("mutating clone leaked into original")
	}
	if v.Equal(New(5)) {
		t.Error("views of different sizes compare Equal")
	}
}

func TestString(t *testing.T) {
	v := New(3)
	v.Set(0, 1)
	v.Set(2, 1)
	if got, want := v.String(), "[n1 ⊥ n1]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestQuickOutdegreeMatchesSlots(t *testing.T) {
	// Property: after any sequence of Set/Clear operations, the cached
	// outdegree equals the number of occupied slots.
	f := func(ops []uint16, seed int64) bool {
		v := New(8)
		for _, op := range ops {
			slot := int(op % 8)
			if op%3 == 0 {
				v.Clear(slot)
			} else {
				v.Set(slot, peer.ID(op%5))
			}
		}
		return v.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIDsLengthIsOutdegree(t *testing.T) {
	f := func(ops []uint16) bool {
		v := New(10)
		for _, op := range ops {
			v.Set(int(op%10), peer.ID(op%7))
		}
		return len(v.IDs()) == v.Outdegree() &&
			len(v.EmptySlots())+v.Outdegree() == v.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
