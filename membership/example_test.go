package membership_test

import (
	"fmt"
	"log"

	"sendforget/membership"
)

// ExampleThresholds reproduces the paper's Section 6.3 worked example:
// a desired expected degree of 30 with a 1% duplication budget.
func ExampleThresholds() {
	dl, _, err := membership.Thresholds(30, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dL:", dl)
	// Output:
	// dL: 18
}

// ExampleNewCluster runs a small in-process cluster deterministically and
// checks the membership properties.
func ExampleNewCluster() {
	cluster, err := membership.NewCluster(membership.ClusterConfig{
		N: 32, S: 12, DL: 4, Loss: 0.02, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Gossip(200) // synchronous rounds; Start/Stop for real timers
	stats := cluster.Stats()
	fmt.Println("connected:", stats.WeaklyConnected)
	fmt.Println("sample non-empty:", len(cluster.Sample(0)) > 0)
	// Output:
	// connected: true
	// sample non-empty: true
}

// ExampleConnectivityMinDL reproduces the Section 7.4 connectivity floor.
func ExampleConnectivityMinDL() {
	dl, err := membership.ConnectivityMinDL(0.01, 0.01, 1e-30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimal dL:", dl)
	// Output:
	// minimal dL: 26
}
