// Package membership is the public API of the sendforget module: a
// loss-tolerant gossip membership service implementing the Send & Forget
// protocol of Gurevich and Keidar (PODC 2009).
//
// Each participant maintains a small local view of peer ids that the
// protocol keeps uniform, load-balanced, and mostly independent even when
// messages are silently lost. Use Thresholds to pick the protocol
// parameters for a desired expected degree, NewCluster for an in-process
// cluster (testing, simulation, or embedding), and NewUDPNode for a real
// networked participant.
//
// The heavy machinery — the protocol itself, the simulator, the paper's
// analysis — lives under internal/; this package re-exports the pieces a
// downstream user needs with a stable surface.
package membership

import (
	"fmt"
	"sync/atomic"
	"time"

	"sendforget/internal/analysis"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
)

// NodeID identifies a member. IDs for in-process clusters are dense
// integers 0..N-1; UDP deployments may use any distinct values.
type NodeID = peer.ID

// Thresholds returns protocol parameters (dL, s) for a desired lossless
// expected outdegree dHat and a duplication/deletion probability budget
// delta, per Section 6.3 of the paper. The paper's worked example:
// Thresholds(30, 0.01) yields dL=18 and s within an even step or two of 40.
func Thresholds(dHat int, delta float64) (dl, s int, err error) {
	return analysis.Thresholds(dHat, delta)
}

// ConnectivityMinDL returns the minimal duplication threshold that keeps
// the overlay weakly connected with probability at least 1-eps at loss
// rate l and duplication budget delta (Section 7.4).
func ConnectivityMinDL(l, delta, eps float64) (int, error) {
	return analysis.ConnectivityMinDL(l, delta, eps)
}

// ClusterConfig configures an in-process cluster.
type ClusterConfig struct {
	// N is the number of nodes (>= 2).
	N int
	// S is the view size (even, >= 6); DL the duplication threshold (even,
	// <= S-6). Pick them with Thresholds.
	S, DL int
	// Loss is the simulated uniform message loss rate in [0, 1).
	Loss float64
	// GossipPeriod is each node's action period when Start is used.
	GossipPeriod time.Duration
	// Seed makes runs reproducible; 0 selects a fixed default.
	Seed int64
}

// Cluster is an in-process S&F cluster: one goroutine per node over a
// lossy in-memory network.
type Cluster struct {
	inner *runtime.Cluster
}

// NewCluster builds (but does not start) a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	// Bootstrap outdegree midway between dL and s (even, >= 2) — the
	// well-provisioned start the paper's analysis assumes.
	d := (cfg.DL + cfg.S) / 2
	if d%2 != 0 {
		d--
	}
	if d < 2 {
		d = 2
	}
	sub, err := runtime.New(runtime.Config{
		Engine: runtime.EngineCluster,
		N:      cfg.N,
		NewCore: func() (protocol.StepCore, error) {
			return sendforget.NewCore(cfg.S, cfg.DL)
		},
		InitDegree: d,
		Loss:       cfg.Loss,
		Period:     cfg.GossipPeriod,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// The public Cluster exposes Start/Sample, which need the concrete
	// goroutine-per-node backend; the factory guarantees the kind.
	return &Cluster{inner: sub.(*runtime.Cluster)}, nil
}

// Start launches the gossip loops. Stop must be called eventually.
func (c *Cluster) Start() { c.inner.Start() }

// Stop terminates all nodes and waits for them.
func (c *Cluster) Stop() { c.inner.Stop() }

// Gossip drives one synchronous round (every node initiates once) without
// wall-clock timers — deterministic alternative to Start.
func (c *Cluster) Gossip(rounds int) {
	for i := 0; i < rounds; i++ {
		c.inner.TickRound()
	}
}

// Sample returns node u's current view: an approximately uniform,
// independent sample of live member ids (Properties M3/M4 of the paper).
func (c *Cluster) Sample(u NodeID) []NodeID {
	return c.inner.Nodes()[u].ViewSnapshot().IDs()
}

// Stats summarizes the cluster's membership graph.
type Stats struct {
	EdgesPerNode      float64
	MeanOutdegree     float64
	MeanIndegree      float64
	IndegreeVariance  float64
	Components        int
	WeaklyConnected   bool
	DependentFraction float64 // visible self-edges + duplicates
}

// Stats measures the current membership graph.
func (c *Cluster) Stats() Stats {
	g := c.inner.Snapshot()
	deg := metrics.Degrees(g, nil)
	sd := metrics.MeasureSpatialDependence(g)
	n := g.N()
	edges := 0.0
	if n > 0 {
		edges = float64(g.NumEdges()) / float64(n)
	}
	return Stats{
		EdgesPerNode:      edges,
		MeanOutdegree:     deg.MeanOut,
		MeanIndegree:      deg.MeanIn,
		IndegreeVariance:  deg.VarIn,
		Components:        g.ComponentCount(),
		WeaklyConnected:   g.WeaklyConnected(),
		DependentFraction: sd.DependentFraction(),
	}
}

// CheckInvariants verifies the protocol invariant (Observation 5.1) on
// every node; useful in tests of embedding applications.
func (c *Cluster) CheckInvariants() error { return c.inner.CheckInvariants() }

// Remove makes node u leave: it simply stops participating (the paper's
// leave semantics); its id decays from the other views over ~s^2/dL rounds.
func (c *Cluster) Remove(u NodeID) { c.inner.RemoveNode(u) }

// Add (re)activates node u, seeding its view with the given ids — copy a
// live node's Sample() per the paper's join rule. When the cluster is
// running (Start was called), the new node starts gossiping immediately.
func (c *Cluster) Add(u NodeID, seeds []NodeID) error {
	return c.inner.AddNode(u, seeds, true)
}

// NodeConfig configures a networked UDP node.
type NodeConfig struct {
	// ID is this node's identity (must be unique in the deployment).
	ID NodeID
	// S, DL as in ClusterConfig.
	S, DL int
	// GossipPeriod between initiated actions (default 100ms).
	GossipPeriod time.Duration
	// ListenAddr is the UDP address to bind, e.g. "0.0.0.0:7946".
	ListenAddr string
	// Peers maps known member ids to their UDP addresses — the bootstrap
	// directory. Further entries are learned from gossip: messages carry
	// addresses alongside ids, and sender addresses come from datagram
	// sources, so only the seed peers need static entries.
	Peers map[NodeID]string
	// Advertise is the address other nodes should learn for this node
	// (default: the bound listen address — fine on a flat network, needs
	// overriding behind NAT).
	Advertise string
	// Seeds are the initial view entries (at least max(2, DL) ids that
	// appear in Peers).
	Seeds []NodeID
}

// Node is a networked S&F participant.
type Node struct {
	// inner is set once at construction; peers may gossip at us before it
	// is assigned (they can hold our id as a seed), so the handoff is
	// atomic and early datagrams are dropped — S&F tolerates loss.
	inner atomic.Pointer[runtime.Node]
	ep    *transport.Endpoint
}

// NewUDPNode binds the socket, wires the directory, and returns a node
// ready to Start.
func NewUDPNode(cfg NodeConfig) (*Node, error) {
	if cfg.ListenAddr == "" {
		return nil, fmt.Errorf("membership: ListenAddr is required")
	}
	n := &Node{}
	ep, err := transport.NewEndpoint(cfg.ListenAddr, func(m protocol.Message) {
		if inner := n.inner.Load(); inner != nil {
			inner.HandleMessage(m)
		}
	})
	if err != nil {
		return nil, err
	}
	adv := cfg.Advertise
	if adv == "" {
		adv = ep.Addr().String()
	}
	if err := ep.EnableAddressLearning(cfg.ID, adv); err != nil {
		ep.Close()
		return nil, err
	}
	for id, addr := range cfg.Peers {
		if err := ep.AddPeer(id, addr); err != nil {
			ep.Close()
			return nil, err
		}
	}
	core, err := sendforget.NewCore(cfg.S, cfg.DL)
	if err != nil {
		ep.Close()
		return nil, err
	}
	inner, err := runtime.NewNode(runtime.NodeConfig{
		ID:     cfg.ID,
		Core:   core,
		Period: cfg.GossipPeriod,
	}, cfg.Seeds, ep)
	if err != nil {
		ep.Close()
		return nil, err
	}
	n.inner.Store(inner)
	n.ep = ep
	return n, nil
}

// Addr returns the bound listen address (useful with port 0).
func (n *Node) Addr() string { return n.ep.Addr().String() }

// KnownPeers returns the size of the node's id-to-address directory,
// including entries learned from gossip.
func (n *Node) KnownPeers() int { return n.ep.KnownPeers() }

// Start launches the periodic gossip loop.
func (n *Node) Start() { n.inner.Load().Start() }

// Sample returns the node's current view ids.
func (n *Node) Sample() []NodeID { return n.inner.Load().ViewSnapshot().IDs() }

// Close stops gossiping and releases the socket. Leaving the membership
// needs nothing else: per the paper, a leaver "simply stops participating
// in the protocol".
func (n *Node) Close() error {
	n.inner.Load().Stop()
	return n.ep.Close()
}
