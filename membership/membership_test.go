package membership

import (
	"testing"
	"time"
)

func TestThresholdsFacade(t *testing.T) {
	dl, s, err := Thresholds(30, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if dl != 18 || s < 40 || s > 44 {
		t.Errorf("Thresholds(30, 0.01) = (%d, %d)", dl, s)
	}
	if _, _, err := Thresholds(31, 0.01); err == nil {
		t.Error("accepted odd dHat")
	}
}

func TestConnectivityMinDLFacade(t *testing.T) {
	dl, err := ConnectivityMinDL(0.01, 0.01, 1e-30)
	if err != nil {
		t.Fatal(err)
	}
	if dl != 26 {
		t.Errorf("ConnectivityMinDL = %d, want 26 (paper example)", dl)
	}
}

func TestClusterLifecycle(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 40, S: 12, DL: 4, Loss: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.Gossip(150)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if !st.WeaklyConnected || st.Components != 1 {
		t.Errorf("cluster not connected: %+v", st)
	}
	if st.EdgesPerNode < 4 || st.EdgesPerNode > 12 {
		t.Errorf("EdgesPerNode = %v, want mid-range", st.EdgesPerNode)
	}
	if st.MeanOutdegree <= 0 || st.MeanIndegree <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	sample := c.Sample(0)
	if len(sample) == 0 {
		t.Fatal("empty sample")
	}
	for _, id := range sample {
		if id < 0 || int(id) >= 40 {
			t.Errorf("sample contains invalid id %v", id)
		}
	}
}

func TestClusterStartStop(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 10, S: 8, DL: 2, GossipPeriod: time.Millisecond, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(50 * time.Millisecond)
	c.Stop()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 1, S: 8, DL: 2}); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := NewCluster(ClusterConfig{N: 10, S: 7, DL: 2}); err == nil {
		t.Error("accepted odd s")
	}
}

func TestUDPNodePair(t *testing.T) {
	a, err := NewUDPNode(NodeConfig{
		ID: 0, S: 8, DL: 2,
		GossipPeriod: 2 * time.Millisecond,
		ListenAddr:   "127.0.0.1:0",
		Seeds:        []NodeID{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPNode(NodeConfig{
		ID: 1, S: 8, DL: 2,
		GossipPeriod: 2 * time.Millisecond,
		ListenAddr:   "127.0.0.1:0",
		Seeds:        []NodeID{0, 0},
		Peers:        map[NodeID]string{0: a.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// a learns b's address after the fact (bootstrap directories are
	// static in this test).
	a2, err := NewUDPNode(NodeConfig{
		ID: 2, S: 8, DL: 2,
		GossipPeriod: 2 * time.Millisecond,
		ListenAddr:   "127.0.0.1:0",
		Seeds:        []NodeID{0, 1},
		Peers:        map[NodeID]string{0: a.Addr(), 1: b.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	a2.Start()
	b.Start()
	time.Sleep(100 * time.Millisecond)
	// b should have received gossip (its id was in seeds of a2 and it
	// gossips toward node 0 whose address it knows).
	if len(b.Sample())+len(a2.Sample()) == 0 {
		t.Error("no view content after UDP gossip")
	}
}

func TestUDPNodeValidation(t *testing.T) {
	if _, err := NewUDPNode(NodeConfig{ID: 0, S: 8, DL: 2, Seeds: []NodeID{1, 2}}); err == nil {
		t.Error("accepted empty listen address")
	}
	if _, err := NewUDPNode(NodeConfig{
		ID: 0, S: 8, DL: 2, ListenAddr: "127.0.0.1:0",
		Peers: map[NodeID]string{1: "b:ad:addr"},
		Seeds: []NodeID{1, 2},
	}); err == nil {
		t.Error("accepted bad peer address")
	}
	if _, err := NewUDPNode(NodeConfig{
		ID: 0, S: 8, DL: 2, ListenAddr: "127.0.0.1:0", Seeds: []NodeID{1},
	}); err == nil {
		t.Error("accepted too few seeds")
	}
}

func TestClusterChurnFacade(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 30, S: 12, DL: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(4)
	c.Gossip(200)
	seeds := c.Sample(0)
	if len(seeds) < 2 {
		t.Fatalf("donor sample too small: %v", seeds)
	}
	if err := c.Add(4, seeds); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(4, seeds); err == nil {
		t.Error("double Add accepted")
	}
	c.Gossip(100)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if !st.WeaklyConnected {
		t.Errorf("cluster fragmented after facade churn: %+v", st)
	}
	// Stop the re-added node's loop if Add started it (cluster not
	// running, but Add(start=true) launched one goroutine).
	c.Stop()
}

func TestUDPAddressLearningEndToEnd(t *testing.T) {
	// a and b know each other statically; c bootstraps knowing only b.
	// Through gossip c must learn a's address (and vice versa) without any
	// static entry.
	mk := func(id NodeID, seeds []NodeID, peers map[NodeID]string) *Node {
		n, err := NewUDPNode(NodeConfig{
			ID: id, S: 8, DL: 2,
			GossipPeriod: 2 * time.Millisecond,
			ListenAddr:   "127.0.0.1:0",
			Seeds:        seeds,
			Peers:        peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk(0, []NodeID{1, 1}, nil)
	defer a.Close()
	b := mk(1, []NodeID{0, 2}, map[NodeID]string{0: a.Addr()})
	defer b.Close()
	c := mk(2, []NodeID{1, 1}, map[NodeID]string{1: b.Addr()})
	defer c.Close()
	if err := a.ep.AddPeer(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	c.Start()
	deadline := time.After(5 * time.Second)
	for c.KnownPeers() < 2 || a.KnownPeers() < 2 {
		select {
		case <-deadline:
			t.Fatalf("directories did not self-populate: a=%d c=%d", a.KnownPeers(), c.KnownPeers())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}
