#!/usr/bin/env bash
# Runs the BenchmarkClusterTick family (per-node vs sharded substrates) and
# records the results in BENCH_cluster.json with a stable schema, so cluster
# performance can be tracked across commits.
#
# Usage:
#   scripts/bench.sh             # pernode + sharded at 10k/100k (1M skipped)
#   FULL=1 scripts/bench.sh      # include the 1M-node round
#   BENCHTIME=2s scripts/bench.sh
#   OUT=/tmp/b.json scripts/bench.sh
#
# Schema (schema=2): one entry per sub-benchmark with iterations, ns/op,
# ns/node-tick (the size-independent figure of merit), B/op, allocs/op. The
# schema-1 rows (pernode/*, sharded/n=*) keep their names — they are the S&F
# baseline and stay comparable across commits — and schema 2 adds the
# per-protocol sharded rows (sharded/<proto>/n=10k|100k for all five batch
# cores) plus two derived blocks: the sharded-vs-pernode speedup at n=10k and
# per_protocol_vs_sf_n10k, each protocol's ns/node-tick as a multiple of the
# S&F row (the <= 3x acceptance ratio).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_cluster.json}"
SHORT="-short"
if [ "${FULL:-0}" = "1" ]; then
	SHORT=""
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench BenchmarkClusterTick -benchtime "$BENCHTIME" -benchmem $SHORT . | tee "$TMP"

awk \
	-v go_version="$(go version | awk '{print $3}')" \
	-v benchtime="$BENCHTIME" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^BenchmarkClusterTick\// {
	name = $1
	sub(/^BenchmarkClusterTick\//, "", name)
	sub(/-[0-9]+$/, "", name)
	iters = $2; nsop = $3
	ntick = "null"; bop = "null"; aop = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "ns/node-tick") ntick = $(i - 1)
		if ($(i) == "B/op") bop = $(i - 1)
		if ($(i) == "allocs/op") aop = $(i - 1)
	}
	n++
	line[n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"ns_per_node_tick\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, nsop, ntick, bop, aop)
	tick[name] = ntick
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkClusterTick\",\n"
	printf "  \"schema\": 2,\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"date\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n", benchtime
	if (("pernode/n=10k" in tick) && ("sharded/n=10k" in tick) && tick["sharded/n=10k"] + 0 > 0)
		printf "  \"speedup_sharded_vs_pernode_n10k\": %.2f,\n", \
			tick["pernode/n=10k"] / tick["sharded/n=10k"]
	nproto = split("sf sfopt shuffle flipper pushpull", protos, " ")
	ratios = ""
	for (j = 1; j <= nproto; j++) {
		key = "sharded/" protos[j] "/n=10k"
		if ((key in tick) && ("sharded/n=10k" in tick) && tick["sharded/n=10k"] + 0 > 0)
			ratios = ratios sprintf("%s\"%s\": %.2f", (ratios == "" ? "" : ", "), protos[j], tick[key] / tick["sharded/n=10k"])
	}
	if (ratios != "")
		printf "  \"per_protocol_vs_sf_n10k\": {%s},\n", ratios
	printf "  \"results\": [\n"
	for (i = 1; i <= n; i++)
		printf "%s%s\n", line[i], (i < n ? "," : "")
	printf "  ]\n}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT"
