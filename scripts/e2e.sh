#!/usr/bin/env bash
# e2e.sh — boot a 3-node sfnode cluster on localhost UDP, each node with its
# management API enabled, drive it over HTTP (health, view, metrics, a
# late-joiner introduction), then shut every node down gracefully and fail on
# any nonzero exit. CI runs this as `make e2e`.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/sfnode"
LOGDIR="$(mktemp -d)"
trap 'status=$?; kill "${PIDS[@]}" 2>/dev/null || true; wait 2>/dev/null || true;
      if [ $status -ne 0 ]; then echo "--- node logs ---"; cat "$LOGDIR"/node*.log; fi;
      rm -rf "$(dirname "$BIN")" "$LOGDIR"' EXIT

go build -o "$BIN" ./cmd/sfnode

# Fixed localhost ports so the peer directories can name each other up front.
UDP=(17800 17801 17802)
MGMT=(17810 17811 17812)
PIDS=()

PEERS_ALL="0=127.0.0.1:${UDP[0]},1=127.0.0.1:${UDP[1]},2=127.0.0.1:${UDP[2]}"
SEEDS=("1,2" "0,2" "0,1")

for i in 0 1 2; do
  "$BIN" -id "$i" -listen "127.0.0.1:${UDP[$i]}" \
    -peers "$PEERS_ALL" -seeds "${SEEDS[$i]}" \
    -period 20ms -report 1h -mgmt "127.0.0.1:${MGMT[$i]}" \
    >"$LOGDIR/node$i.log" 2>&1 &
  PIDS+=($!)
done

curl_retry() { # curl_retry url — poll until the endpoint answers
  local url=$1 tries=0
  until curl -fsS --max-time 2 "$url"; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
      echo "e2e: $url never came up" >&2
      return 1
    fi
    sleep 0.1
  done
}

echo "e2e: waiting for management servers"
for i in 0 1 2; do
  curl_retry "http://127.0.0.1:${MGMT[$i]}/health" >/dev/null
done

echo "e2e: letting gossip run"
sleep 2

echo "e2e: checking health + views + metrics on every node"
for i in 0 1 2; do
  health=$(curl -fsS "http://127.0.0.1:${MGMT[$i]}/health")
  echo "node $i health: $health"
  grep -q '"status":"ok"' <<<"$health"
  grep -q '"mode":"udp"' <<<"$health"

  view=$(curl -fsS "http://127.0.0.1:${MGMT[$i]}/view")
  grep -q '"view":\[' <<<"$view"
  # After 2s of 20ms-period gossip the view must not be empty.
  if grep -q '"view":\[\]' <<<"$view"; then
    echo "e2e: node $i still has an empty view" >&2
    exit 1
  fi

  metrics=$(curl -fsS "http://127.0.0.1:${MGMT[$i]}/metrics")
  grep -q '^sendforget_traffic_sends_total ' <<<"$metrics"
  grep -q '^sendforget_node_ticks_total ' <<<"$metrics"
  grep -q '^sendforget_up 1$' <<<"$metrics"
  sends=$(awk '/^sendforget_traffic_sends_total /{print $2}' <<<"$metrics")
  if [ "$sends" -le 0 ]; then
    echo "e2e: node $i never sent (sends=$sends)" >&2
    exit 1
  fi
done

echo "e2e: introducing node 2 to node 0 again via POST /join (idempotent directory add)"
curl -fsS -X POST -d '{"id":2,"addr":"127.0.0.1:'"${UDP[2]}"'"}' \
  "http://127.0.0.1:${MGMT[0]}/join" | grep -q '"status":"ok"'

echo "e2e: config reload: retune node 0's gossip period live"
curl -fsS -X POST -d '{"period":"10ms"}' "http://127.0.0.1:${MGMT[0]}/config" \
  | grep -q '"period":"10ms"'

echo "e2e: draining node 2 via bare POST /leave (graceful daemon exit)"
curl -fsS -X POST -d '{}' "http://127.0.0.1:${MGMT[2]}/leave" | grep -q '"status":"draining"'
for _ in $(seq 50); do
  kill -0 "${PIDS[2]}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${PIDS[2]}" 2>/dev/null; then
  echo "e2e: node 2 did not exit after /leave" >&2
  exit 1
fi
wait "${PIDS[2]}"  # propagates a nonzero exit (set -e)

echo "e2e: stopping nodes 0 and 1 with SIGTERM (graceful signal path)"
kill -TERM "${PIDS[0]}" "${PIDS[1]}"
wait "${PIDS[0]}"
wait "${PIDS[1]}"
PIDS=()

grep -q 'leaving via management API' "$LOGDIR/node2.log"
grep -q 'leaving on signal' "$LOGDIR/node0.log"
grep -q 'leaving on signal' "$LOGDIR/node1.log"

echo "e2e: ok"
